// Process-wide observability metrics: counters, gauges, histograms.
//
// The paper's whole argument is a latency/accuracy trade-off (exit rate
// under tau, browser compute vs. edge round trip), so the runtime must be
// able to answer "where did this request's time go?" without recompiling.
// This registry is the metrics half of that story (spans live in
// common/obs/trace.h): named, hierarchical, thread-safe instruments that
// any layer can update from hot paths and any tool can snapshot as text
// or JSON.
//
// Naming scheme: lowercase dotted hierarchies, `component.subsystem.name`,
// with the unit as a suffix where one applies ("client.edge.roundtrip_us",
// "edge.server.requests"). Every static name lives in
// common/obs/metric_names.h; scripts/lint_invariants.py rejects inline
// string literals at registration sites so names cannot fork.
//
// Concurrency: updates are lock-free atomics (relaxed -- these are
// statistics, not synchronization); registration takes a mutex but
// returns stable references, so hot paths register once and update
// through the reference. The instrument maps are LCRS_GUARDED_BY the
// registry mutex, so an unlocked touch is a compile error under
// -DLCRS_THREAD_SAFETY=ON.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/sync.h"

namespace lcrs::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// A value that can move both ways (queue depth, live connections).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> v_{0.0};
};

/// Point-in-time copy of one histogram, with percentile extraction.
struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;        // ascending bucket upper bounds
  std::vector<std::int64_t> counts;  // bounds.size() + 1 (last = overflow)
  std::int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
  /// Linear interpolation inside the bucket holding rank p*count;
  /// p in [0, 1]. Returns 0 for an empty histogram.
  double percentile(double p) const;
};

/// Fixed-bucket histogram. Bucket bounds are chosen at registration and
/// never change; recording is an atomic increment plus CAS loops for
/// sum/min/max, so concurrent writers never lose counts.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void record(double v);

  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }

  HistogramSnapshot snapshot(const std::string& name) const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::int64_t>> counts_;
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Default bucket bounds for microsecond latencies: 1-2-5 decades from
/// 1 us to 10 s, wide enough for an XNOR op and an edge round trip alike.
const std::vector<double>& default_latency_bounds_us();

struct CounterSnapshot {
  std::string name;
  std::int64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};

/// Point-in-time copy of a whole registry, renderable as text or JSON.
struct Snapshot {
  std::vector<CounterSnapshot> counters;      // sorted by name
  std::vector<GaugeSnapshot> gauges;          // sorted by name
  std::vector<HistogramSnapshot> histograms;  // sorted by name

  const CounterSnapshot* find_counter(const std::string& name) const;
  const GaugeSnapshot* find_gauge(const std::string& name) const;
  const HistogramSnapshot* find_histogram(const std::string& name) const;

  /// Human-readable table, one instrument per line.
  std::string to_text() const;
  /// Machine-readable JSON object keyed by instrument kind.
  std::string to_json() const;
};

/// A named collection of instruments. `Registry::global()` is the
/// process-wide registry every free-standing call site records into;
/// components that need per-instance stats (BrowserClient, EdgeServer)
/// own an instance Registry and mirror updates into the global one.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& global();

  /// Finds or creates. Returned references stay valid for the registry's
  /// lifetime (reset_values() zeroes values but keeps instruments).
  Counter& counter(const std::string& name) LCRS_EXCLUDES(mutex_);
  Gauge& gauge(const std::string& name) LCRS_EXCLUDES(mutex_);
  /// `bounds` applies on first registration (empty = default latency
  /// buckets); later lookups must pass the same bounds or none.
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& bounds = {})
      LCRS_EXCLUDES(mutex_);

  Snapshot snapshot() const LCRS_EXCLUDES(mutex_);

  /// Zeroes every instrument without invalidating references. Intended
  /// for tests that assert on global counters.
  void reset_values() LCRS_EXCLUDES(mutex_);

 private:
  // Leaf lock: registration and snapshot never acquire anything else
  // while holding it (instrument reads/updates are lock-free atomics).
  mutable Mutex mutex_{"obs.metrics.registry"};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      LCRS_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      LCRS_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      LCRS_GUARDED_BY(mutex_);
};

/// Instrument pairs that keep a component-local registry and the global
/// registry in sync with one update call. The snapshot-view stats structs
/// (ClientStats, ServerStats) read the local side; fleet-wide tooling
/// reads Registry::global().
class MirroredCounter {
 public:
  MirroredCounter(Registry& local, const std::string& name)
      : local_(local.counter(name)),
        global_(Registry::global().counter(name)) {}
  void add(std::int64_t n = 1) {
    local_.add(n);
    global_.add(n);
  }
  std::int64_t value() const { return local_.value(); }

 private:
  Counter& local_;
  Counter& global_;
};

class MirroredGauge {
 public:
  MirroredGauge(Registry& local, const std::string& name)
      : local_(local.gauge(name)), global_(Registry::global().gauge(name)) {}
  void add(double d) {
    local_.add(d);
    global_.add(d);
  }
  void set(double v) {
    local_.set(v);
    global_.set(v);
  }
  double value() const { return local_.value(); }

 private:
  Gauge& local_;
  Gauge& global_;
};

class MirroredHistogram {
 public:
  MirroredHistogram(Registry& local, const std::string& name)
      : local_(local.histogram(name)),
        global_(Registry::global().histogram(name)) {}
  void record(double v) {
    local_.record(v);
    global_.record(v);
  }
  std::int64_t count() const { return local_.count(); }
  double sum() const { return local_.sum(); }

 private:
  Histogram& local_;
  Histogram& global_;
};

// ---------------------------------------------------------------------
// Process-level gauges (metric_names.h "process.*" family): uptime,
// resolved SIMD dispatch level, build type, hardware threads. Registered
// once into Registry::global() (idempotent); uptime is refreshed by
// update_process_gauges(), which scrape paths call just before
// snapshotting so /metrics and /statusz report live values.

void register_process_gauges();
void update_process_gauges();

/// Seconds since the process-local steady-clock anchor (what the uptime
/// gauge reports; also used by /statusz).
double process_uptime_seconds();

// ---------------------------------------------------------------------
// Profiling toggle (per-layer / per-op timing hooks).
//
// Same contract as the numerics sanitizer: disabled it costs one relaxed
// atomic load at each hook site; enabled, Sequential and the webinfer
// engine time every layer/op and feed the registry.

bool profiling_enabled();
void set_profiling_enabled(bool on);

/// RAII toggle for tests and scoped profiling runs.
class ScopedProfiling {
 public:
  explicit ScopedProfiling(bool on = true) : prev_(profiling_enabled()) {
    set_profiling_enabled(on);
  }
  ~ScopedProfiling() { set_profiling_enabled(prev_); }
  ScopedProfiling(const ScopedProfiling&) = delete;
  ScopedProfiling& operator=(const ScopedProfiling&) = delete;

 private:
  bool prev_;
};

}  // namespace lcrs::obs
