#include "common/obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.h"

namespace lcrs::obs {

namespace {

// The Span-side tap flag lives here (declared in trace.h) so trace.cpp
// does not depend on the recorder.
std::atomic<bool> g_flight_recording{false};

void append_json_trace(std::ostringstream& os, const FlightTrace& t) {
  os << "{\"trace_id\":" << t.trace_id
     << ",\"latency_us\":" << t.latency_us
     << ",\"error\":" << (t.error ? "true" : "false")
     << ",\"finished\":" << (t.finished ? "true" : "false")
     << ",\"tag\":\"" << json_escape(t.tag) << "\""
     << ",\"spans_dropped\":" << t.spans_dropped << ",\"spans\":[";
  for (std::size_t i = 0; i < t.spans.size(); ++i) {
    const SpanRecord& s = t.spans[i];
    if (i > 0) os << ',';
    os << "{\"name\":\"" << json_escape(s.name)
       << "\",\"start_ns\":" << s.start_ns << ",\"end_ns\":" << s.end_ns
       << ",\"duration_us\":" << s.duration_us() << '}';
  }
  os << "]}";
}

void append_json_traces(std::ostringstream& os, const char* key,
                        const std::vector<FlightTrace>& traces) {
  os << '"' << key << "\":[";
  for (std::size_t i = 0; i < traces.size(); ++i) {
    if (i > 0) os << ',';
    append_json_trace(os, traces[i]);
  }
  os << ']';
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void FlightRecorderOptions::validate() const {
  LCRS_CHECK(recent_capacity > 0, "recent_capacity must be >= 1");
  LCRS_CHECK(slowest_capacity > 0, "slowest_capacity must be >= 1");
  LCRS_CHECK(error_capacity > 0, "error_capacity must be >= 1");
  LCRS_CHECK(max_pending > 0, "max_pending must be >= 1");
  LCRS_CHECK(max_spans_per_trace > 0, "max_spans_per_trace must be >= 1");
}

const FlightTrace* FlightDump::slowest_trace() const {
  // `slowest` is sorted descending by latency; fall back to scanning
  // recent/errors in case nothing finished with spans yet.
  if (!slowest.empty()) return &slowest.front();
  const FlightTrace* best = nullptr;
  for (const auto& t : recent) {
    if (best == nullptr || t.latency_us > best->latency_us) best = &t;
  }
  return best;
}

std::string FlightDump::to_json() const {
  std::ostringstream os;
  os << "{\"pending\":" << pending
     << ",\"traces_finished\":" << traces_finished
     << ",\"traces_dropped\":" << traces_dropped << ',';
  append_json_traces(os, "slowest", slowest);
  os << ',';
  append_json_traces(os, "errors", errors);
  os << ',';
  append_json_traces(os, "recent", recent);
  os << '}';
  return os.str();
}

FlightRecorder::FlightRecorder(FlightRecorderOptions options)
    : opts_(options) {
  opts_.validate();
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::recompute_latency(FlightTrace& t) {
  if (t.spans.empty()) {
    t.latency_us = 0.0;
    return;
  }
  std::int64_t lo = t.spans.front().start_ns;
  std::int64_t hi = t.spans.front().end_ns;
  for (const SpanRecord& s : t.spans) {
    lo = std::min(lo, s.start_ns);
    hi = std::max(hi, s.end_ns);
  }
  t.latency_us = static_cast<double>(hi - lo) / 1e3;
}

FlightRecorder::TracePtr FlightRecorder::find_locked(
    std::uint64_t trace_id) const {
  const auto it = pending_.find(trace_id);
  if (it != pending_.end()) return it->second;
  // Retained traces: scan newest-first -- a late span or second finish()
  // almost always targets the most recently retained trace.
  for (auto rit = recent_.rbegin(); rit != recent_.rend(); ++rit) {
    if ((*rit)->trace_id == trace_id) return *rit;
  }
  for (const TracePtr& t : slowest_) {
    if (t->trace_id == trace_id) return t;
  }
  for (auto rit = errors_.rbegin(); rit != errors_.rend(); ++rit) {
    if ((*rit)->trace_id == trace_id) return *rit;
  }
  return nullptr;
}

void FlightRecorder::update_slowest_locked(const TracePtr& t) {
  const auto resident =
      std::find(slowest_.begin(), slowest_.end(), t);
  if (resident != slowest_.end()) return;  // latency already re-read on dump
  if (slowest_.size() < opts_.slowest_capacity) {
    slowest_.push_back(t);
    return;
  }
  auto weakest = std::min_element(
      slowest_.begin(), slowest_.end(), [](const TracePtr& a, const TracePtr& b) {
        return a->latency_us < b->latency_us;
      });
  if ((*weakest)->latency_us < t->latency_us) *weakest = t;
}

void FlightRecorder::retain_locked(const TracePtr& t) {
  recent_.push_back(t);
  if (recent_.size() > opts_.recent_capacity) recent_.pop_front();
  update_slowest_locked(t);
  if (t->error) {
    if (std::find(errors_.begin(), errors_.end(), t) == errors_.end()) {
      errors_.push_back(t);
      if (errors_.size() > opts_.error_capacity) errors_.pop_front();
    }
  }
}

void FlightRecorder::on_span(const SpanRecord& span) {
  if (span.trace_id == 0) return;
  MutexLock lock(mutex_);
  TracePtr t = find_locked(span.trace_id);
  if (t == nullptr) {
    // First span of a new request: admit it to the pending set, evicting
    // the oldest unfinished trace when full.
    while (pending_.size() >= opts_.max_pending && !pending_order_.empty()) {
      const std::uint64_t victim = pending_order_.front();
      pending_order_.pop_front();
      if (pending_.erase(victim) > 0) ++traces_dropped_;
    }
    t = std::make_shared<FlightTrace>();
    t->trace_id = span.trace_id;
    pending_[span.trace_id] = t;
    pending_order_.push_back(span.trace_id);
  }
  if (t->spans.size() < opts_.max_spans_per_trace) {
    t->spans.push_back(span);
  } else {
    ++t->spans_dropped;
  }
  if (t->finished) {
    // Late span (loopback: client.network closes after the server's
    // finish). Restitch and let the longer extent compete for slowest-N.
    recompute_latency(*t);
    update_slowest_locked(t);
  }
}

void FlightRecorder::finish(std::uint64_t trace_id, bool error,
                            const std::string& tag) {
  if (trace_id == 0) return;
  MutexLock lock(mutex_);
  TracePtr t = find_locked(trace_id);
  if (t == nullptr) {
    // finish() without spans (recording enabled mid-request): still
    // retain the outcome so error tags are never lost.
    t = std::make_shared<FlightTrace>();
    t->trace_id = trace_id;
  }
  pending_.erase(trace_id);
  const bool was_finished = t->finished;
  const bool was_error = t->error;
  t->finished = true;
  t->error = t->error || error;
  if (!tag.empty()) {
    if (!t->tag.empty()) t->tag += ',';
    t->tag += tag;
  }
  recompute_latency(*t);
  if (!was_finished) {
    ++traces_finished_;
    retain_locked(t);
  } else {
    update_slowest_locked(t);
    if (t->error && !was_error) {
      errors_.push_back(t);
      if (errors_.size() > opts_.error_capacity) errors_.pop_front();
    }
  }
}

FlightDump FlightRecorder::dump() const {
  FlightDump out;
  MutexLock lock(mutex_);
  out.pending = static_cast<std::int64_t>(pending_.size());
  out.traces_finished = traces_finished_;
  out.traces_dropped = traces_dropped_;
  const auto copy_sorted = [](const FlightTrace& t) {
    FlightTrace c = t;
    std::sort(c.spans.begin(), c.spans.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                return a.start_ns < b.start_ns;
              });
    return c;
  };
  out.recent.reserve(recent_.size());
  for (const TracePtr& t : recent_) out.recent.push_back(copy_sorted(*t));
  out.slowest.reserve(slowest_.size());
  for (const TracePtr& t : slowest_) out.slowest.push_back(copy_sorted(*t));
  std::sort(out.slowest.begin(), out.slowest.end(),
            [](const FlightTrace& a, const FlightTrace& b) {
              return a.latency_us > b.latency_us;
            });
  out.errors.reserve(errors_.size());
  for (const TracePtr& t : errors_) out.errors.push_back(copy_sorted(*t));
  return out;
}

void FlightRecorder::clear() {
  MutexLock lock(mutex_);
  pending_.clear();
  pending_order_.clear();
  recent_.clear();
  slowest_.clear();
  errors_.clear();
  traces_finished_ = 0;
  traces_dropped_ = 0;
}

// --- Span-side hooks (declared in trace.h) ---------------------------

bool flight_recording_enabled() {
  return g_flight_recording.load(std::memory_order_relaxed);
}

void set_flight_recording_enabled(bool on) {
  g_flight_recording.store(on, std::memory_order_relaxed);
}

void flight_record_span(const SpanRecord& span) {
  if (flight_recording_enabled()) FlightRecorder::global().on_span(span);
}

void flight_record_finish(std::uint64_t trace_id, bool error,
                          const std::string& tag) {
  if (flight_recording_enabled()) {
    FlightRecorder::global().finish(trace_id, error, tag);
  }
}

}  // namespace lcrs::obs
