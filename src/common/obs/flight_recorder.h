// Tail-sampling flight recorder: the "why was THAT request slow?" half
// of observability.
//
// Histograms (common/obs/metrics.h) count latency outliers; trace sinks
// (common/obs/trace.h) stream every span somewhere else. Neither answers
// the on-call question "show me the p99 request's timeline" from inside
// a live process. The flight recorder does: it taps every finished Span
// (see the hook at the bottom of trace.h), groups spans by trace id into
// per-request timelines, and when the request finishes retains it in
// three fixed-size sets:
//
//   recent   -- a ring of the last N finished traces (context),
//   slowest  -- the N traces with the largest stitched end-to-end
//               latency seen since the last clear() (the tail),
//   errors   -- a ring of every trace finished with an error flag
//               (fallbacks, failed completions), oldest dropped first.
//
// "Stitched end-to-end latency" is the span extent max(end) - min(start)
// across every span recorded under the trace id -- client conv1 through
// edge serialize -- not any single stage. On loopback the client's
// `client.network` span routinely closes *after* the server finishes the
// trace; on_span() therefore merges late spans into already-finished
// traces and re-evaluates slowest-set membership, so the retained
// timeline is always the complete one.
//
// finish() may be called by both ends of a request (client outcome
// tagging and server completion); the second call merges: error flags
// OR together, tags join comma-separated, latency is recomputed.
//
// Concurrency: one leaf lcrs::Mutex ("obs.flight.recorder") guards all
// containers; on_span/finish are called from client, connection, and
// worker threads with no other lock held (Span destructors run outside
// the server's queue/slot critical sections).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/obs/trace.h"
#include "common/sync.h"

namespace lcrs::obs {

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters). Shared by the flight-recorder dump
/// and the ops-plane /statusz renderer.
std::string json_escape(const std::string& s);

struct FlightRecorderOptions {
  std::size_t recent_capacity = 256;   // "recent" ring size
  std::size_t slowest_capacity = 32;   // slowest-N retention set size
  std::size_t error_capacity = 128;    // all-error ring size
  std::size_t max_pending = 1024;      // in-flight (unfinished) traces
  std::size_t max_spans_per_trace = 64;

  void validate() const;
};

/// One request's timeline: every span recorded under its trace id plus
/// the merged outcome from finish() calls.
struct FlightTrace {
  std::uint64_t trace_id = 0;
  std::vector<SpanRecord> spans;   // sorted by start_ns in dump() output
  std::int64_t spans_dropped = 0;  // spans past max_spans_per_trace
  double latency_us = 0.0;         // stitched extent: max(end) - min(start)
  bool error = false;
  std::string tag;                 // outcome tags, comma-joined
  bool finished = false;
};

/// Point-in-time copy of the recorder's retention sets (the /tracez
/// payload).
struct FlightDump {
  std::vector<FlightTrace> recent;   // oldest first
  std::vector<FlightTrace> slowest;  // descending latency
  std::vector<FlightTrace> errors;   // oldest first
  std::int64_t pending = 0;          // unfinished traces still buffered
  std::int64_t traces_finished = 0;
  std::int64_t traces_dropped = 0;   // pending traces evicted unfinished

  /// The retained trace with the largest stitched latency, or nullptr.
  const FlightTrace* slowest_trace() const;
  std::string to_json() const;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderOptions options = {});
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-wide recorder the Span hook feeds (see trace.h).
  static FlightRecorder& global();

  /// Buffers one finished span under its trace id. Spans with id 0 are
  /// ignored. Late spans (arriving after finish()) merge into the
  /// retained trace and latency/slowest membership are re-evaluated.
  void on_span(const SpanRecord& span) LCRS_EXCLUDES(mutex_);

  /// Marks the trace finished and moves it into the retention sets.
  /// Safe to call from both ends of a request: repeat calls merge
  /// (error ORs, tags join, latency recomputed). Unknown ids create an
  /// empty finished trace so a tag is never lost. Id 0 is ignored.
  void finish(std::uint64_t trace_id, bool error, const std::string& tag)
      LCRS_EXCLUDES(mutex_);

  FlightDump dump() const LCRS_EXCLUDES(mutex_);
  void clear() LCRS_EXCLUDES(mutex_);

  const FlightRecorderOptions& options() const { return opts_; }

 private:
  using TracePtr = std::shared_ptr<FlightTrace>;

  /// Looks the id up in pending, then in the retention sets (a trace may
  /// live in several sets at once; they share the pointer).
  TracePtr find_locked(std::uint64_t trace_id) const LCRS_REQUIRES(mutex_);
  void retain_locked(const TracePtr& t) LCRS_REQUIRES(mutex_);
  void update_slowest_locked(const TracePtr& t) LCRS_REQUIRES(mutex_);
  static void recompute_latency(FlightTrace& t);

  const FlightRecorderOptions opts_;

  // Leaf lock: nothing else is acquired while it is held.
  mutable Mutex mutex_{"obs.flight.recorder"};
  std::map<std::uint64_t, TracePtr> pending_ LCRS_GUARDED_BY(mutex_);
  // Insertion order of pending ids for bounded eviction (lazily pruned:
  // ids already finished are skipped when evicting).
  std::deque<std::uint64_t> pending_order_ LCRS_GUARDED_BY(mutex_);
  std::deque<TracePtr> recent_ LCRS_GUARDED_BY(mutex_);
  std::vector<TracePtr> slowest_ LCRS_GUARDED_BY(mutex_);
  std::deque<TracePtr> errors_ LCRS_GUARDED_BY(mutex_);
  std::int64_t traces_finished_ LCRS_GUARDED_BY(mutex_) = 0;
  std::int64_t traces_dropped_ LCRS_GUARDED_BY(mutex_) = 0;
};

/// Convenience wrappers over FlightRecorder::global() that no-op while
/// recording is disabled (see set_flight_recording_enabled in trace.h) --
/// hot paths call these unconditionally.
void flight_record_finish(std::uint64_t trace_id, bool error,
                          const std::string& tag);

/// RAII enable/restore for tests and benchmarks.
class ScopedFlightRecording {
 public:
  explicit ScopedFlightRecording(bool on = true)
      : prev_(flight_recording_enabled()) {
    set_flight_recording_enabled(on);
  }
  ~ScopedFlightRecording() { set_flight_recording_enabled(prev_); }
  ScopedFlightRecording(const ScopedFlightRecording&) = delete;
  ScopedFlightRecording& operator=(const ScopedFlightRecording&) = delete;

 private:
  bool prev_;
};

}  // namespace lcrs::obs
