#include "common/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>
#include <thread>

#include "common/obs/metric_names.h"
#include "common/obs/trace.h"
#include "common/simd.h"

namespace lcrs::obs {

namespace {

/// Names are lowercase dotted hierarchies: segments of [a-z0-9_], joined
/// by single dots. Rejecting everything else keeps snapshots greppable
/// and the JSON export escape-free.
void check_name(const std::string& name) {
  LCRS_CHECK(!name.empty(), "metric name must not be empty");
  LCRS_CHECK(name.front() != '.' && name.back() != '.',
             "metric name has leading/trailing dot: " << name);
  bool prev_dot = false;
  for (const char c : name) {
    if (c == '.') {
      LCRS_CHECK(!prev_dot, "metric name has empty segment: " << name);
      prev_dot = true;
      continue;
    }
    prev_dot = false;
    const bool ok =
        (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    LCRS_CHECK(ok, "metric name has invalid character '"
                       << c << "': " << name
                       << " (use lowercase dotted segments)");
  }
}

void check_bounds(const std::vector<double>& bounds) {
  LCRS_CHECK(!bounds.empty(), "histogram needs at least one bucket bound");
  for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
    LCRS_CHECK(bounds[i] < bounds[i + 1],
               "histogram bounds must be strictly ascending");
  }
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

std::string fmt_double(double v) {
  std::ostringstream os;
  os << std::setprecision(6) << v;
  return os.str();
}

}  // namespace

// ---------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  check_bounds(bounds_);
}

void Histogram::record(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  // min/max/sum before the count: a snapshot that observes count > 0 has
  // at least one recorder far enough along that min/max are (usually)
  // real values, not the +-inf sentinels. snapshot() still sanitizes the
  // residual window -- relaxed atomics promise no cross-field ordering.
  atomic_add(sum_, v);
  atomic_min(min_, v);
  atomic_max(max_, v);
  count_.fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot(const std::string& name) const {
  HistogramSnapshot s;
  s.name = name;
  s.bounds = bounds_;
  s.counts.reserve(counts_.size());
  for (const auto& c : counts_) {
    s.counts.push_back(c.load(std::memory_order_relaxed));
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  if (s.count > 0) {
    s.min = min_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    // Snapshot-under-load race: a recorder may have bumped count before
    // its min/max landed, leaving the +-inf init values (or min > max)
    // visible. Fall back to the observed mean so percentile() stays
    // monotone and to_json() never emits bare `inf` (invalid JSON).
    if (!std::isfinite(s.min) || !std::isfinite(s.max) || s.min > s.max) {
      s.min = s.max = s.mean();
    }
  }
  return s;
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

double HistogramSnapshot::percentile(double p) const {
  LCRS_CHECK(p >= 0.0 && p <= 1.0, "percentile p must be in [0, 1]");
  if (count == 0) return 0.0;
  const double target = p * static_cast<double>(count);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double c = static_cast<double>(counts[i]);
    if (c <= 0.0) continue;
    if (cum + c >= target) {
      // Bucket i spans (bounds[i-1], bounds[i]]; clamp the ends to the
      // observed min/max so sparse histograms do not over-spread.
      double lo = i == 0 ? min : bounds[i - 1];
      double hi = i < bounds.size() ? bounds[i] : max;
      lo = std::max(lo, min);
      hi = std::min(hi, max);
      if (hi < lo) hi = lo;
      const double frac = std::clamp((target - cum) / c, 0.0, 1.0);
      return lo + (hi - lo) * frac;
    }
    cum += c;
  }
  return max;
}

const std::vector<double>& default_latency_bounds_us() {
  static const std::vector<double> bounds = {
      1.0,   2.0,   5.0,   10.0,  20.0,  50.0,  1e2, 2e2, 5e2, 1e3, 2e3,
      5e3,   1e4,   2e4,   5e4,   1e5,   2e5,   5e5, 1e6, 2e6, 5e6, 1e7};
  return bounds;
}

// ---------------------------------------------------------------------
// Snapshot

const CounterSnapshot* Snapshot::find_counter(const std::string& name) const {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const GaugeSnapshot* Snapshot::find_gauge(const std::string& name) const {
  for (const auto& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const HistogramSnapshot* Snapshot::find_histogram(
    const std::string& name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string Snapshot::to_text() const {
  std::ostringstream os;
  os << std::setprecision(6);
  for (const auto& c : counters) {
    os << "counter " << c.name << " " << c.value << "\n";
  }
  for (const auto& g : gauges) {
    os << "gauge   " << g.name << " " << g.value << "\n";
  }
  for (const auto& h : histograms) {
    os << "hist    " << h.name << " count=" << h.count
       << " mean=" << h.mean() << " p50=" << h.percentile(0.5)
       << " p90=" << h.percentile(0.9) << " p99=" << h.percentile(0.99)
       << " min=" << h.min << " max=" << h.max << "\n";
  }
  return os.str();
}

std::string Snapshot::to_json() const {
  // Names are lint-restricted to [a-z0-9_.] so no JSON escaping is needed.
  std::ostringstream os;
  os << "{\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    os << (i ? "," : "") << "\"" << counters[i].name
       << "\":" << counters[i].value;
  }
  os << "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    os << (i ? "," : "") << "\"" << gauges[i].name
       << "\":" << fmt_double(gauges[i].value);
  }
  os << "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const auto& h = histograms[i];
    os << (i ? "," : "") << "\"" << h.name << "\":{\"count\":" << h.count
       << ",\"sum\":" << fmt_double(h.sum)
       << ",\"mean\":" << fmt_double(h.mean())
       << ",\"p50\":" << fmt_double(h.percentile(0.5))
       << ",\"p90\":" << fmt_double(h.percentile(0.9))
       << ",\"p99\":" << fmt_double(h.percentile(0.99))
       << ",\"min\":" << fmt_double(h.min)
       << ",\"max\":" << fmt_double(h.max) << "}";
  }
  os << "}}";
  return os.str();
}

// ---------------------------------------------------------------------
// Registry

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  check_name(name);
  MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    LCRS_CHECK(gauges_.find(name) == gauges_.end() &&
                   histograms_.find(name) == histograms_.end(),
               "metric '" << name << "' already registered as another kind");
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(const std::string& name) {
  check_name(name);
  MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    LCRS_CHECK(counters_.find(name) == counters_.end() &&
                   histograms_.find(name) == histograms_.end(),
               "metric '" << name << "' already registered as another kind");
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::vector<double>& bounds) {
  check_name(name);
  MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    LCRS_CHECK(counters_.find(name) == counters_.end() &&
                   gauges_.find(name) == gauges_.end(),
               "metric '" << name << "' already registered as another kind");
    it = histograms_
             .emplace(name, std::make_unique<Histogram>(
                                bounds.empty() ? default_latency_bounds_us()
                                               : bounds))
             .first;
  } else if (!bounds.empty()) {
    LCRS_CHECK(it->second->bounds() == bounds,
               "histogram '" << name
                             << "' re-registered with different bounds");
  }
  return *it->second;
}

Snapshot Registry::snapshot() const {
  Snapshot s;
  MutexLock lock(mutex_);
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    s.counters.push_back(CounterSnapshot{name, c->value()});
  }
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    s.gauges.push_back(GaugeSnapshot{name, g->value()});
  }
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    s.histograms.push_back(h->snapshot(name));
  }
  return s;  // std::map iteration order keeps every section sorted
}

void Registry::reset_values() {
  MutexLock lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

// ---------------------------------------------------------------------
// Process-level gauges

double process_uptime_seconds() {
  // steady_now_ns() is anchored at its first call, which happens during
  // startup for any process that traces or registers these gauges.
  return static_cast<double>(steady_now_ns()) / 1e9;
}

void register_process_gauges() {
  Registry& g = Registry::global();
  g.gauge(names::kProcessSimdLevel)
      .set(static_cast<double>(static_cast<int>(simd::active_level())));
#ifdef NDEBUG
  g.gauge(names::kProcessBuildDebug).set(0.0);
#else
  g.gauge(names::kProcessBuildDebug).set(1.0);
#endif
  g.gauge(names::kProcessHardwareThreads)
      .set(static_cast<double>(std::thread::hardware_concurrency()));
  g.gauge(names::kProcessUptimeSeconds).set(process_uptime_seconds());
}

void update_process_gauges() {
  // Scrape-time refresh: uptime advances; the SIMD level is re-read so a
  // ScopedForcedLevel (tests/benches) shows up in the exposition too.
  Registry& g = Registry::global();
  g.gauge(names::kProcessUptimeSeconds).set(process_uptime_seconds());
  g.gauge(names::kProcessSimdLevel)
      .set(static_cast<double>(static_cast<int>(simd::active_level())));
}

// ---------------------------------------------------------------------
// Profiling toggle

namespace {
#ifdef LCRS_PROFILE_DEFAULT_ON
std::atomic<bool> g_profiling{true};
#else
std::atomic<bool> g_profiling{false};
#endif
}  // namespace

bool profiling_enabled() {
  return g_profiling.load(std::memory_order_relaxed);
}

void set_profiling_enabled(bool on) {
  g_profiling.store(on, std::memory_order_relaxed);
}

}  // namespace lcrs::obs
