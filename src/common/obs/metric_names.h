// Central catalogue of metric names.
//
// Every statically-known metric name in the tree is declared here and
// referenced as a constant at registration sites;
// scripts/lint_invariants.py (rule "metric-name") rejects inline string
// literals passed to Registry::counter/gauge/histogram anywhere else, so
// a name cannot silently fork into two near-identical spellings.
//
// Dynamic families (per-layer, per-op, per-baseline) go through the
// builder functions at the bottom, which compose names from catalogued
// prefixes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace lcrs::obs::names {

// --- browser client -------------------------------------------------
inline constexpr const char* kClientRequests = "client.requests";
inline constexpr const char* kClientExitBinary = "client.exit.binary_branch";
inline constexpr const char* kClientExitMain = "client.exit.main_branch";
inline constexpr const char* kClientExitFallback =
    "client.exit.binary_fallback";
inline constexpr const char* kClientRetries = "client.edge.retries";
inline constexpr const char* kClientReconnects = "client.edge.reconnects";
inline constexpr const char* kClientBusyRejections =
    "client.edge.busy_rejections";
inline constexpr const char* kClientModelUnavailable =
    "client.edge.model_unavailable";
inline constexpr const char* kClientEdgeRoundtripUs =
    "client.edge.roundtrip_us";
inline constexpr const char* kClientBrowserComputeUs =
    "client.browser.compute_us";
inline constexpr const char* kClientSerializeUs = "client.serialize_us";

// --- span names on the client side of a request ---------------------
inline constexpr const char* kSpanClientConv1 = "client.conv1";
inline constexpr const char* kSpanClientBinaryBranch = "client.binary_branch";
inline constexpr const char* kSpanClientSerialize = "client.serialize";
inline constexpr const char* kSpanClientNetwork = "client.network";

// --- edge server -----------------------------------------------------
inline constexpr const char* kServerRequests = "edge.server.requests";
inline constexpr const char* kServerConnections = "edge.server.connections";
inline constexpr const char* kServerConnectionErrors =
    "edge.server.connection_errors";
inline constexpr const char* kServerActiveConnections =
    "edge.server.active_connections";
inline constexpr const char* kServerCompletionUs =
    "edge.server.completion_us";
// Worker-pool / batcher instruments (see DESIGN.md "Edge serving model").
inline constexpr const char* kServerQueueDepth = "edge.server.queue_depth";
inline constexpr const char* kServerQueueWaitUs =
    "edge.server.queue_wait_us";
inline constexpr const char* kServerBatchSize = "edge.server.batch_size";
inline constexpr const char* kServerBatches = "edge.server.batches";
inline constexpr const char* kServerRejectedBusy =
    "edge.server.rejected_busy";
inline constexpr const char* kServerRejectedModel =
    "edge.server.rejected_unknown_model";

// --- edge model registry (edge/model_registry.h) ---------------------
// models = registered entries; models_live additionally counts retired
// snapshots still pinned by in-flight batches (the drain gauge: it
// returns to `models` once every old-model batch finishes).
inline constexpr const char* kRegistryModels = "edge.registry.models";
inline constexpr const char* kRegistryModelsLive =
    "edge.registry.models_live";
inline constexpr const char* kRegistrySwaps = "edge.registry.swaps";
inline constexpr const char* kRegistryEvictions = "edge.registry.evictions";

// --- span names on the edge side of a request -----------------------
inline constexpr const char* kSpanEdgeDeserialize = "edge.deserialize";
inline constexpr const char* kSpanEdgeComplete = "edge.complete";
inline constexpr const char* kSpanEdgeSerialize = "edge.serialize";

// --- edge server: ops plane shape gauges (set once at startup) -------
inline constexpr const char* kServerWorkerPoolSize =
    "edge.server.worker_pool_size";
inline constexpr const char* kServerMaxBatch = "edge.server.max_batch";
inline constexpr const char* kServerReady = "edge.server.ready";

// --- ops-plane HTTP server -------------------------------------------
inline constexpr const char* kOpsRequests = "obs.ops.requests";
inline constexpr const char* kOpsHttpErrors = "obs.ops.http_errors";

// --- process-level (obs::register_process_gauges) --------------------
inline constexpr const char* kProcessUptimeSeconds =
    "process.uptime_seconds";
inline constexpr const char* kProcessSimdLevel = "process.simd_level";
inline constexpr const char* kProcessBuildDebug = "process.build_debug";
inline constexpr const char* kProcessHardwareThreads =
    "process.hardware_threads";

// --- exit policy (Eq. 7 entropy threshold) ---------------------------
inline constexpr const char* kExitEntropy = "core.exit.entropy";
inline constexpr const char* kExitBinary = "core.exit.binary_branch";
inline constexpr const char* kExitMain = "core.exit.main_branch";
inline constexpr const char* kExitFallback = "core.exit.binary_fallback";

// --- training --------------------------------------------------------
inline constexpr const char* kTrainBatchUs = "train.batch_us";

// --- local (simulated) runtime ---------------------------------------
inline constexpr const char* kSimBrowserUs = "sim.step.browser_us";
inline constexpr const char* kSimUploadUs = "sim.step.upload_us";
inline constexpr const char* kSimEdgeUs = "sim.step.edge_us";
inline constexpr const char* kSimDownloadUs = "sim.step.download_us";

// --- dynamic-name builders -------------------------------------------

/// Per-layer timing in Sequential: "nn.layer.<index>.<kind>.<stage>",
/// e.g. "nn.layer.0.conv2d.forward_us". `kind` must already be a valid
/// lowercase metric segment (layer kind() strings are).
inline std::string layer_metric(std::size_t index, const std::string& kind,
                                const std::string& stage) {
  return "nn.layer." + std::to_string(index) + "." + kind + "." + stage;
}

/// Per-model serving counters on the edge server:
/// "edge.server.model.<id>.<which>" with `which` in {"requests",
/// "swaps"}. Ids are u32 registry keys, so the family stays bounded by
/// the registry size.
inline std::string model_metric(std::uint32_t model_id,
                                const std::string& which) {
  return "edge.server.model." + std::to_string(model_id) + "." + which;
}

/// Per-op timing in the webinfer engine:
/// "webinfer.op.<index>.<opname>.us", e.g. "webinfer.op.0.conv2d.us".
inline std::string webinfer_op_metric(std::size_t index,
                                      const std::string& op) {
  return "webinfer.op." + std::to_string(index) + "." + op + ".us";
}

/// Per-baseline cost gauges: "baseline.<slug>.<which>" with `which` in
/// {"total_ms", "comm_ms", "compute_ms"}; `slug` is the approach name
/// lowercased with non-alphanumerics mapped to '_'.
inline std::string baseline_gauge(const std::string& approach,
                                  const std::string& which) {
  std::string slug;
  slug.reserve(approach.size());
  for (char c : approach) {
    if (c >= 'A' && c <= 'Z') {
      slug.push_back(static_cast<char>(c - 'A' + 'a'));
    } else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      slug.push_back(c);
    } else if (!slug.empty() && slug.back() != '_') {
      slug.push_back('_');
    }
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();
  return "baseline." + slug + "." + which;
}

}  // namespace lcrs::obs::names
