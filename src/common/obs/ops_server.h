// Ops plane: a tiny HTTP/1.0 server exposing the process's metrics,
// health, status, and flight-recorder traces on a side port.
//
// Endpoints (all GET, Connection: close):
//   /metrics       Prometheus text exposition of a Registry snapshot
//   /metrics.json  the registry's JSON snapshot (Snapshot::to_json)
//   /healthz       liveness: 200 "ok" while the server thread runs
//   /readyz        readiness: 200 while serving, 503 during drain/stop
//   /statusz       build info, SIMD level, uptime, serving config (JSON)
//   /tracez        FlightRecorder dump (slowest-N / errors / recent)
//   /              plain-text index of the above
//
// Design: one accept+serve thread over the existing edge/tcp socket
// layer. Scrapes are rare (seconds apart) and tiny; a thread pool would
// be pure complexity here. The request parser is deliberately hardened
// -- bounded head size, strict request line, printable-ASCII-only --
// because the port may be reachable by more than the scraper; it is
// pure (no I/O) so fuzz/fuzz_ops_http.cpp can drive it byte-for-byte.
//
// The pure helpers (parse_http_request / ops_respond / render_*) are the
// testable surface; OpsServer is a thin socket loop around them.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <thread>

#include "common/obs/flight_recorder.h"
#include "common/obs/metrics.h"
#include "edge/tcp.h"

namespace lcrs::obs {

/// A parsed (and validated) HTTP request head.
struct HttpRequest {
  std::string method;  // uppercase ASCII letters, e.g. "GET"
  std::string target;  // starts with '/', query string still attached
};

/// Strict HTTP/1.x request-head parser. `head` is everything up to and
/// including the blank line. Returns nullopt on anything malformed:
/// bad request line shape, non-HTTP version token, control bytes,
/// oversized method/target, malformed header lines.
std::optional<HttpRequest> parse_http_request(const std::string& head);

/// The routing target with any query string stripped.
std::string request_path(const HttpRequest& req);

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Serializes status line + headers + body (HTTP/1.0, Connection: close).
std::string render_http_response(const HttpResponse& resp);

/// Maps a registry metric name ("edge.server.requests") to a Prometheus
/// metric name ("lcrs_edge_server_requests").
std::string prometheus_name(const std::string& name);

/// Escapes a Prometheus label value (backslash, double quote, newline).
std::string prometheus_escape_label_value(const std::string& value);

/// Renders a full snapshot in Prometheus text exposition format:
/// counters as `counter`, gauges as `gauge`, histograms as cumulative
/// `_bucket{le="..."}` series plus `_sum` and `_count` (the `+Inf`
/// bucket equals `_count` by construction).
std::string render_prometheus(const Snapshot& snapshot);

/// Everything the endpoint handlers read. Defaults wire up the
/// process-global registry and flight recorder; tests substitute their
/// own.
struct OpsHooks {
  const Registry* registry = nullptr;          // nullptr = Registry::global()
  const FlightRecorder* recorder = nullptr;    // nullptr = global()
  std::function<bool()> ready;                 // nullptr = always ready
  std::function<std::string()> status_json;    // nullptr = minimal statusz
};

/// Pure request -> response routing (no sockets; shared by OpsServer,
/// tests, and the fuzz harness).
HttpResponse ops_respond(const HttpRequest& req, const OpsHooks& hooks);

struct OpsOptions {
  std::size_t max_request_bytes = 8192;  // request head cap -> 431 beyond
  double request_timeout_ms = 2000.0;    // per-connection read+write budget

  void validate() const;
};

class OpsServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the serve thread.
  explicit OpsServer(std::uint16_t port, OpsHooks hooks = {},
                     OpsOptions options = {});
  ~OpsServer();

  OpsServer(const OpsServer&) = delete;
  OpsServer& operator=(const OpsServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  /// Idempotent: shuts the listener down and joins the serve thread.
  void stop();

 private:
  void serve_loop();
  void serve_one(edge::Socket& conn);

  OpsHooks hooks_;
  OpsOptions opts_;
  edge::Listener listener_;
  std::atomic<bool> stopping_{false};
  Counter& requests_;     // obs.ops.requests (global registry)
  Counter& http_errors_;  // obs.ops.http_errors
  std::thread thread_;
};

/// Minimal loopback HTTP/1.0 GET -- the scrape client used by
/// `lcrs_tool scrape`, the benches, and the integration tests.
struct HttpGetResult {
  int status = 0;
  std::string body;
  std::string head;  // raw status line + headers
};
HttpGetResult http_get(std::uint16_t port, const std::string& target,
                       double timeout_ms = 2000.0);

}  // namespace lcrs::obs
