// Per-request trace spans: the timeline half of observability.
//
// A request gets a 64-bit trace id in BrowserClient::classify(); every
// stage it passes through (browser conv1, binary branch, serialize,
// network wait, edge deserialize/complete/serialize) opens a RAII Span
// tagged with that id. The id rides the wire in the v2 protocol frame
// header, so client-side and server-side spans for one request stitch
// into a single timeline in whatever sink is installed.
//
// Timestamps are steady_clock nanoseconds anchored at process start --
// monotonic, immune to NTP steps, and fine-grained enough that even a
// sub-microsecond serialize stage records non-zero duration.
//
// Sinks: tests use RingBufferSink (bounded, drop-counting); offline
// analysis uses JsonlFileSink (one JSON object per finished span).
// When no sink is installed, a Span is two relaxed atomic loads and
// nothing else.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <fstream>
#include <string>
#include <vector>

#include "common/sync.h"

namespace lcrs::obs {

/// Nanoseconds since an arbitrary process-local steady_clock anchor.
std::int64_t steady_now_ns();

/// Deterministic, collision-resistant, nonzero 64-bit trace id
/// (splitmix64 over a process-wide counter -- no std::random_device,
/// per the repo's reproducibility rule; zero is reserved for
/// "untraced").
std::uint64_t next_trace_id();

/// One finished span, as delivered to a TraceSink.
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::string name;          // e.g. "client.network", "edge.complete"
  std::int64_t start_ns = 0; // steady_now_ns() at construction
  std::int64_t end_ns = 0;   // steady_now_ns() at destruction

  double duration_us() const {
    return static_cast<double>(end_ns - start_ns) / 1e3;
  }
};

/// Destination for finished spans. Implementations must be thread-safe:
/// client and server threads emit concurrently.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void emit(const SpanRecord& span) = 0;
};

/// Bounded in-memory sink for tests and the lcrs_tool `metrics`
/// subcommand; overflow drops the oldest spans and counts the drops.
class RingBufferSink : public TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity = 4096);

  void emit(const SpanRecord& span) override;

  /// Copy of the buffered spans, oldest first.
  std::vector<SpanRecord> spans() const;
  std::int64_t dropped() const;
  void clear();

 private:
  const std::size_t capacity_;
  mutable Mutex mutex_{"obs.trace.ring"};  // leaf lock
  std::deque<SpanRecord> buffer_ LCRS_GUARDED_BY(mutex_);
  std::int64_t dropped_ LCRS_GUARDED_BY(mutex_) = 0;
};

/// Appends one JSON object per span to a file -- the offline-analysis
/// format (each line: trace_id, name, start/end ns, duration_us).
class JsonlFileSink : public TraceSink {
 public:
  explicit JsonlFileSink(const std::string& path);

  void emit(const SpanRecord& span) override;
  void flush();

 private:
  Mutex mutex_{"obs.trace.jsonl"};  // leaf lock
  std::ofstream out_ LCRS_GUARDED_BY(mutex_);
};

/// Installs (or, with nullptr, removes) the process-wide sink. The sink
/// must outlive every span emitted while it is installed; ScopedTraceSink
/// handles that for tests.
void set_trace_sink(TraceSink* sink);
TraceSink* trace_sink();

/// RAII installer for tests: installs `sink` on construction, restores
/// the previous sink on destruction.
class ScopedTraceSink {
 public:
  explicit ScopedTraceSink(TraceSink* sink) : prev_(trace_sink()) {
    set_trace_sink(sink);
  }
  ~ScopedTraceSink() { set_trace_sink(prev_); }
  ScopedTraceSink(const ScopedTraceSink&) = delete;
  ScopedTraceSink& operator=(const ScopedTraceSink&) = delete;

 private:
  TraceSink* prev_;
};

/// Flight-recorder tap (implemented in flight_recorder.cpp, declared
/// here so Span need not include the recorder). While enabled, every
/// finished span is also delivered to FlightRecorder::global() -- the
/// tail-sampling layer behind the ops plane's /tracez endpoint.
bool flight_recording_enabled();
void set_flight_recording_enabled(bool on);
void flight_record_span(const SpanRecord& span);

/// RAII span: records start on construction, emits to the sink captured
/// at construction (and/or the flight recorder) on destruction.
/// Inactive (zero cost beyond two relaxed loads in the constructor) when
/// trace_id is 0 or neither a sink nor flight recording is installed.
class Span {
 public:
  Span(std::uint64_t trace_id, std::string name)
      : sink_(trace_sink()), trace_id_(trace_id) {
    active_ = trace_id_ != 0 &&
              (sink_ != nullptr || flight_recording_enabled());
    if (active_) {
      name_ = std::move(name);
      start_ns_ = steady_now_ns();
    }
  }

  ~Span() {
    if (active_) {
      const SpanRecord rec{trace_id_, name_, start_ns_, steady_now_ns()};
      if (sink_ != nullptr) sink_->emit(rec);
      flight_record_span(rec);  // no-op when recording is disabled
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  TraceSink* sink_;
  std::uint64_t trace_id_;
  bool active_ = false;
  std::string name_;
  std::int64_t start_ns_ = 0;
};

}  // namespace lcrs::obs
