#include "common/obs/ops_server.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

#include "common/obs/metric_names.h"
#include "common/simd.h"

namespace lcrs::obs {

namespace {

constexpr std::size_t kMaxMethodBytes = 16;
constexpr std::size_t kMaxTargetBytes = 1024;

bool printable_ascii(char c) {
  const auto u = static_cast<unsigned char>(c);
  return u >= 0x21 && u <= 0x7e;
}

const char* status_reason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 431:
      return "Request Header Fields Too Large";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

/// Compact float text for exposition values and `le` labels. %.10g keeps
/// the 1-2-5 latency decades and the 0.05-step entropy grid exact while
/// never emitting locale- or precision-noise digits.
std::string prom_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string default_statusz() {
  std::ostringstream os;
  os << "{\"uptime_seconds\":" << prom_number(process_uptime_seconds())
     << ",\"simd_level\":\"" << simd::level_name(simd::active_level())
     << "\"}";
  return os.str();
}

const char* kIndexBody =
    "lcrs ops plane\n"
    "  /metrics       Prometheus text exposition\n"
    "  /metrics.json  JSON metrics snapshot\n"
    "  /healthz       liveness\n"
    "  /readyz        readiness (503 while draining)\n"
    "  /statusz       build/config/uptime (JSON)\n"
    "  /tracez        flight-recorder trace dump (JSON)\n";

}  // namespace

std::optional<HttpRequest> parse_http_request(const std::string& head) {
  // Request line: METHOD SP TARGET SP HTTP/D.D CRLF
  const std::size_t line_end = head.find("\r\n");
  if (line_end == std::string::npos) return std::nullopt;
  const std::string line = head.substr(0, line_end);

  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos || sp1 == 0 || sp1 > kMaxMethodBytes) {
    return std::nullopt;
  }
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos || sp2 == sp1 + 1) return std::nullopt;
  if (line.find(' ', sp2 + 1) != std::string::npos) return std::nullopt;

  HttpRequest req;
  req.method = line.substr(0, sp1);
  req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = line.substr(sp2 + 1);

  for (const char c : req.method) {
    if (c < 'A' || c > 'Z') return std::nullopt;
  }
  if (req.target.size() > kMaxTargetBytes) return std::nullopt;
  if (req.target.front() != '/') return std::nullopt;
  for (const char c : req.target) {
    if (!printable_ascii(c)) return std::nullopt;
  }
  // HTTP/<digit>.<digit> -- anything else (including ICE/1.0 smuggling
  // shapes) is rejected.
  if (version.size() != 8 || version.compare(0, 5, "HTTP/") != 0 ||
      std::isdigit(static_cast<unsigned char>(version[5])) == 0 ||
      version[6] != '.' ||
      std::isdigit(static_cast<unsigned char>(version[7])) == 0) {
    return std::nullopt;
  }

  // Header lines: `name: value` with a printable name; values may hold
  // horizontal tabs and spaces but no other control bytes. Obsolete
  // line folding (leading whitespace) is rejected outright.
  std::size_t pos = line_end + 2;
  while (pos < head.size()) {
    const std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) return std::nullopt;
    if (eol == pos) break;  // blank line: end of head
    const std::string header = head.substr(pos, eol - pos);
    const std::size_t colon = header.find(':');
    if (colon == std::string::npos || colon == 0) return std::nullopt;
    for (std::size_t i = 0; i < colon; ++i) {
      if (!printable_ascii(header[i])) return std::nullopt;
    }
    for (std::size_t i = colon + 1; i < header.size(); ++i) {
      const char c = header[i];
      if (c != ' ' && c != '\t' && !printable_ascii(c)) return std::nullopt;
    }
    pos = eol + 2;
  }
  return req;
}

std::string request_path(const HttpRequest& req) {
  const std::size_t q = req.target.find('?');
  return q == std::string::npos ? req.target : req.target.substr(0, q);
}

std::string render_http_response(const HttpResponse& resp) {
  std::ostringstream os;
  os << "HTTP/1.0 " << resp.status << ' ' << status_reason(resp.status)
     << "\r\nContent-Type: " << resp.content_type
     << "\r\nContent-Length: " << resp.body.size()
     << "\r\nConnection: close\r\n\r\n"
     << resp.body;
  return os.str();
}

std::string prometheus_name(const std::string& name) {
  // Registry names are lint-restricted to [a-z0-9_.]; dots become
  // underscores and the shared `lcrs_` prefix namespaces the exporter.
  // Anything outside the Prometheus name alphabet is squashed to '_' as
  // a belt-and-braces measure -- the exposition must stay parseable even
  // if a name sneaks past the lint.
  std::string out = "lcrs_";
  out.reserve(name.size() + out.size());
  for (const char c : name) {
    const bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(legal ? c : '_');
  }
  return out;
}

std::string prometheus_escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size() + 4);
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string render_prometheus(const Snapshot& snapshot) {
  std::ostringstream os;
  for (const auto& c : snapshot.counters) {
    const std::string n = prometheus_name(c.name);
    os << "# TYPE " << n << " counter\n" << n << ' ' << c.value << '\n';
  }
  for (const auto& g : snapshot.gauges) {
    const std::string n = prometheus_name(g.name);
    os << "# TYPE " << n << " gauge\n"
       << n << ' ' << prom_number(g.value) << '\n';
  }
  for (const auto& h : snapshot.histograms) {
    const std::string n = prometheus_name(h.name);
    os << "# TYPE " << n << " histogram\n";
    std::int64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.counts[i];
      os << n << "_bucket{le=\""
         << prometheus_escape_label_value(prom_number(h.bounds[i])) << "\"} "
         << cumulative << '\n';
    }
    cumulative += h.counts.back();  // overflow bucket
    // `_count` is rendered as the +Inf cumulative rather than the
    // histogram's own count field: under concurrent recording the two
    // can momentarily disagree, and exposition conformance requires
    // bucket{le="+Inf"} == count exactly.
    os << n << "_bucket{le=\"+Inf\"} " << cumulative << '\n'
       << n << "_sum " << prom_number(h.sum) << '\n'
       << n << "_count " << cumulative << '\n';
  }
  return os.str();
}

HttpResponse ops_respond(const HttpRequest& req, const OpsHooks& hooks) {
  HttpResponse resp;
  if (req.method != "GET") {
    resp.status = 405;
    resp.body = "method not allowed\n";
    return resp;
  }
  const Registry& registry =
      hooks.registry != nullptr ? *hooks.registry : Registry::global();
  const FlightRecorder& recorder =
      hooks.recorder != nullptr ? *hooks.recorder : FlightRecorder::global();
  const std::string path = request_path(req);

  if (path == "/metrics") {
    update_process_gauges();
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = render_prometheus(registry.snapshot());
  } else if (path == "/metrics.json") {
    update_process_gauges();
    resp.content_type = "application/json";
    resp.body = registry.snapshot().to_json();
  } else if (path == "/healthz") {
    resp.body = "ok\n";
  } else if (path == "/readyz") {
    const bool ready = hooks.ready == nullptr || hooks.ready();
    resp.status = ready ? 200 : 503;
    resp.body = ready ? "ready\n" : "draining\n";
  } else if (path == "/statusz") {
    resp.content_type = "application/json";
    resp.body =
        hooks.status_json != nullptr ? hooks.status_json() : default_statusz();
  } else if (path == "/tracez") {
    resp.content_type = "application/json";
    resp.body = recorder.dump().to_json();
  } else if (path == "/") {
    resp.body = kIndexBody;
  } else {
    resp.status = 404;
    resp.body = "not found\n";
  }
  return resp;
}

void OpsOptions::validate() const {
  LCRS_CHECK(max_request_bytes >= 64, "max_request_bytes must be >= 64");
  LCRS_CHECK(request_timeout_ms > 0.0, "request_timeout_ms must be > 0");
}

OpsServer::OpsServer(std::uint16_t port, OpsHooks hooks, OpsOptions options)
    : hooks_(std::move(hooks)),
      opts_(options),
      listener_(port),
      requests_(Registry::global().counter(names::kOpsRequests)),
      http_errors_(Registry::global().counter(names::kOpsHttpErrors)) {
  opts_.validate();
  thread_ = std::thread([this] { serve_loop(); });
}

OpsServer::~OpsServer() { stop(); }

void OpsServer::stop() {
  if (stopping_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  listener_.shutdown_now();
  if (thread_.joinable()) thread_.join();
}

void OpsServer::serve_loop() {
  while (!stopping_.load()) {
    edge::Socket conn;
    try {
      conn = listener_.accept_one();
    } catch (const Error&) {
      if (stopping_.load()) break;
      continue;
    }
    if (!conn.valid()) break;  // listener shut down
    requests_.add();
    try {
      serve_one(conn);
    } catch (const Error&) {
      // Peer hung up mid-request / timed out: count it, keep serving.
      http_errors_.add();
    }
  }
}

void OpsServer::serve_one(edge::Socket& conn) {
  const edge::Deadline deadline =
      edge::Deadline::after_ms(opts_.request_timeout_ms);
  std::string buf;
  std::size_t head_end = std::string::npos;
  bool eof = false;
  while (buf.size() < opts_.max_request_bytes) {
    char chunk[512];
    const std::size_t want =
        std::min(sizeof(chunk), opts_.max_request_bytes - buf.size());
    const std::size_t n = conn.recv_some(chunk, want, deadline);
    if (n == 0) {
      eof = true;
      break;
    }
    buf.append(chunk, n);
    head_end = buf.find("\r\n\r\n");
    if (head_end != std::string::npos) break;
  }

  HttpResponse resp;
  if (head_end != std::string::npos) {
    const auto req = parse_http_request(buf.substr(0, head_end + 4));
    if (req.has_value()) {
      resp = ops_respond(*req, hooks_);
    } else {
      resp.status = 400;
      resp.body = "bad request\n";
    }
  } else {
    // No blank line within the cap: header flood (431) or truncation (400).
    resp.status = eof ? 400 : 431;
    resp.body = eof ? "bad request\n" : "request head too large\n";
  }
  if (resp.status >= 400) http_errors_.add();
  const std::string wire = render_http_response(resp);
  conn.send_all(wire.data(), wire.size(), deadline);

  if (resp.status >= 400) {
    // Lingering close: the peer may still be mid-send (header flood,
    // oversized garbage). Closing with unread bytes queued would RST the
    // connection and wipe the response we just sent off the peer's
    // socket, so drain -- bounded in both bytes and time -- until EOF.
    try {
      char sink[1024];
      const edge::Deadline linger = edge::Deadline::after_ms(250.0);
      std::size_t drained = 0;
      while (drained < (1u << 20)) {
        const std::size_t n = conn.recv_some(sink, sizeof(sink), linger);
        if (n == 0) break;
        drained += n;
      }
    } catch (const Error&) {
      // Timeout or reset while draining; the response is already out.
    }
  }
}

HttpGetResult http_get(std::uint16_t port, const std::string& target,
                       double timeout_ms) {
  const edge::Deadline deadline = edge::Deadline::after_ms(timeout_ms);
  const edge::Socket sock = edge::connect_local(port);
  const std::string request = "GET " + target +
                              " HTTP/1.0\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  sock.send_all(request.data(), request.size(), deadline);

  std::string raw;
  for (;;) {
    char chunk[4096];
    const std::size_t n = sock.recv_some(chunk, sizeof(chunk), deadline);
    if (n == 0) break;
    raw.append(chunk, n);
    LCRS_CHECK(raw.size() <= (64u << 20), "ops response too large");
  }

  HttpGetResult result;
  const std::size_t head_end = raw.find("\r\n\r\n");
  LCRS_CHECK(head_end != std::string::npos,
             "malformed HTTP response (no header terminator)");
  result.head = raw.substr(0, head_end);
  result.body = raw.substr(head_end + 4);
  // Status line: HTTP/<v> SP <code> SP <reason>
  const std::size_t sp = result.head.find(' ');
  LCRS_CHECK(sp != std::string::npos && result.head.size() >= sp + 4,
             "malformed HTTP status line: " << result.head);
  result.status = std::stoi(result.head.substr(sp + 1, 3));
  return result;
}

}  // namespace lcrs::obs
