#include "common/simd_math.h"

#include <cmath>
#include <cstring>

#include "common/simd.h"

#if LCRS_SIMD_COMPILED_AVX2
#include <immintrin.h>
#endif

namespace lcrs::simd {
namespace {

void tanh_scalar(float* data, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) data[i] = std::tanh(data[i]);
}

#if LCRS_SIMD_COMPILED_AVX2

inline __m256 madd8(__m256 a, __m256 b, __m256 c) {
#ifdef __FMA__
  return _mm256_fmadd_ps(a, b, c);
#else
  return _mm256_add_ps(_mm256_mul_ps(a, b), c);
#endif
}

// tanh(x) ~= x * P(x^2) / Q(x^2), the classic minimax fit used across the
// ML-framework lineage. Inputs are clamped to +/-7.90531 (float tanh is
// saturated beyond that); |x| < 4e-4 returns x itself (tanh(x) == x in
// float there, and it keeps +/-0 exact); NaN propagates.
inline __m256 tanh8(__m256 x) {
  const __m256 clamp = _mm256_set1_ps(7.90531110763549805f);
  const __m256 tiny = _mm256_set1_ps(4e-4f);
  const __m256 a1 = _mm256_set1_ps(4.89352455891786e-03f);
  const __m256 a3 = _mm256_set1_ps(6.37261928875436e-04f);
  const __m256 a5 = _mm256_set1_ps(1.48572235717979e-05f);
  const __m256 a7 = _mm256_set1_ps(5.12229709037114e-08f);
  const __m256 a9 = _mm256_set1_ps(-8.60467152213735e-11f);
  const __m256 a11 = _mm256_set1_ps(2.00018790482477e-13f);
  const __m256 a13 = _mm256_set1_ps(-2.76076847742355e-16f);
  const __m256 b0 = _mm256_set1_ps(4.89352518554385e-03f);
  const __m256 b2 = _mm256_set1_ps(2.26843463243900e-03f);
  const __m256 b4 = _mm256_set1_ps(1.18534705686654e-04f);
  const __m256 b6 = _mm256_set1_ps(1.19825839466702e-06f);

  const __m256 sign_bit = _mm256_set1_ps(-0.0f);
  const __m256 ax = _mm256_andnot_ps(sign_bit, x);
  // Pass x through unchanged when it is tiny or NaN (min/max against the
  // clamp would otherwise quietly replace a NaN lane with the clamp).
  const __m256 pass = _mm256_or_ps(_mm256_cmp_ps(ax, tiny, _CMP_LT_OQ),
                                   _mm256_cmp_ps(x, x, _CMP_UNORD_Q));

  __m256 xc = _mm256_min_ps(x, clamp);
  xc = _mm256_max_ps(xc, _mm256_xor_ps(clamp, sign_bit));

  const __m256 x2 = _mm256_mul_ps(xc, xc);
  __m256 p = madd8(x2, a13, a11);
  p = madd8(x2, p, a9);
  p = madd8(x2, p, a7);
  p = madd8(x2, p, a5);
  p = madd8(x2, p, a3);
  p = madd8(x2, p, a1);
  p = _mm256_mul_ps(p, xc);
  __m256 q = madd8(x2, b6, b4);
  q = madd8(x2, q, b2);
  q = madd8(x2, q, b0);

  return _mm256_blendv_ps(_mm256_div_ps(p, q), x, pass);
}

void tanh_avx2(float* data, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(data + i, tanh8(_mm256_loadu_ps(data + i)));
  }
  if (i < n) {
    // Same 8-wide kernel for the ragged tail, via a padded buffer: every
    // element sees identical instructions regardless of tensor length.
    alignas(32) float buf[8] = {0.0f};
    const std::size_t bytes =
        sizeof(float) * static_cast<std::size_t>(n - i);
    std::memcpy(buf, data + i, bytes);
    _mm256_store_ps(buf, tanh8(_mm256_load_ps(buf)));
    std::memcpy(data + i, buf, bytes);
  }
}

#endif  // LCRS_SIMD_COMPILED_AVX2

}  // namespace

void tanh_inplace(float* data, std::int64_t n) {
#if LCRS_SIMD_COMPILED_AVX2
  if (active_level() == Level::kAvx2) {
    tanh_avx2(data, n);
    return;
  }
#endif
  tanh_scalar(data, n);
}

}  // namespace lcrs::simd
