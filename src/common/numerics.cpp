#include "common/numerics.h"

#include <cmath>
#include <sstream>

namespace lcrs::numerics {

// Thread-safety model: this subsystem is deliberately lock-free. The two
// process-wide toggles below are relaxed atomics (independent flags, no
// ordering with checked data), and check_values only reads the caller's
// buffer -- so hooks on kernel hot paths never serialize parallel_for
// workers. Nothing here participates in the capability map (DESIGN.md).

namespace {

#ifdef LCRS_CHECK_NUMERICS_DEFAULT_ON
constexpr bool kDefaultEnabled = true;
#else
constexpr bool kDefaultEnabled = false;
#endif

std::atomic<bool> g_enabled{kDefaultEnabled};

// Finite activations/gradients in this codebase live well below 1e6 even
// on deliberately divergent runs; 1e8 flags genuine blow-ups without
// tripping on large-but-healthy logits.
std::atomic<double> g_magnitude_limit{1e8};

[[noreturn]] void fail(const char* stage, const std::string& what,
                       const char* kind, float value, std::int64_t index,
                       std::int64_t n) {
  std::ostringstream os;
  os << "numerics: " << stage << " of " << what << ": " << kind;
  if (std::isfinite(value)) os << ' ' << value;
  os << " at index " << index << " of " << n;
  throw NumericsError(os.str());
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

double magnitude_limit() {
  return g_magnitude_limit.load(std::memory_order_relaxed);
}

void set_magnitude_limit(double limit) {
  g_magnitude_limit.store(limit, std::memory_order_relaxed);
}

void check_values(const char* stage, const std::string& what,
                  const float* data, std::int64_t n) {
  if (!enabled()) return;
  const double limit = magnitude_limit();
  for (std::int64_t i = 0; i < n; ++i) {
    const float v = data[i];
    if (std::isnan(v)) fail(stage, what, "NaN", v, i, n);
    if (std::isinf(v)) fail(stage, what, "Inf", v, i, n);
    if (limit > 0.0 && std::fabs(static_cast<double>(v)) > limit) {
      fail(stage, what, "magnitude", v, i, n);
    }
  }
}

}  // namespace lcrs::numerics
