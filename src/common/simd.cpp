#include "common/simd.h"

#include <atomic>
#include <cstdlib>
#include <string>

#include "common/error.h"
#include "common/logging.h"

namespace lcrs::simd {

namespace {

// -1 = no override; otherwise the int value of a forced Level.
std::atomic<int> g_forced{-1};

bool cpu_supports(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kSse:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("sse2") != 0;
#else
      return false;
#endif
    case Level::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Level::kNeon:
      // No runtime probe: AArch64 mandates NEON, and 32-bit builds only
      // define __ARM_NEON when the target guarantees it.
      return LCRS_SIMD_COMPILED_NEON != 0;
  }
  return false;
}

bool compiled_in(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kSse:
      return LCRS_SIMD_COMPILED_SSE != 0;
    case Level::kAvx2:
      return LCRS_SIMD_COMPILED_AVX2 != 0;
    case Level::kNeon:
      return LCRS_SIMD_COMPILED_NEON != 0;
  }
  return false;
}

Level best_available() {
  for (const Level l : {Level::kAvx2, Level::kSse, Level::kNeon}) {
    if (level_available(l)) return l;
  }
  return Level::kScalar;
}

/// Parses LCRS_SIMD and clamps to availability. Runs once.
Level detect_startup_level() {
  const char* env = std::getenv("LCRS_SIMD");
  if (env == nullptr || *env == '\0') return best_available();
  const std::string want(env);
  Level requested = Level::kScalar;
  bool known = true;
  if (want == "scalar") {
    requested = Level::kScalar;
  } else if (want == "sse") {
    requested = Level::kSse;
  } else if (want == "avx2") {
    requested = Level::kAvx2;
  } else if (want == "neon") {
    requested = Level::kNeon;
  } else {
    known = false;
  }
  if (!known) {
    LCRS_WARN("LCRS_SIMD=" << want
                               << " is not one of scalar|sse|avx2|neon; "
                                  "using detected level "
                               << level_name(best_available()));
    return best_available();
  }
  if (!level_available(requested)) {
    LCRS_WARN("LCRS_SIMD=" << want
                               << " not available on this build/CPU; "
                                  "falling back to scalar");
    return Level::kScalar;
  }
  return requested;
}

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse:
      return "sse";
    case Level::kAvx2:
      return "avx2";
    case Level::kNeon:
      return "neon";
  }
  return "?";
}

bool level_available(Level level) {
  return compiled_in(level) && cpu_supports(level);
}

Level active_level() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Level>(forced);
  // Magic-static: detection and env parsing run exactly once.
  static const Level startup = detect_startup_level();
  return startup;
}

ScopedForcedLevel::ScopedForcedLevel(Level level)
    : previous_(g_forced.load(std::memory_order_relaxed)) {
  LCRS_CHECK(level_available(level),
             "cannot force SIMD level " << level_name(level)
                                        << ": not available on this "
                                           "build/CPU");
  g_forced.store(static_cast<int>(level), std::memory_order_relaxed);
}

ScopedForcedLevel::~ScopedForcedLevel() {
  g_forced.store(previous_, std::memory_order_relaxed);
}

}  // namespace lcrs::simd
