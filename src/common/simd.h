// Runtime SIMD dispatch for the serving hot-path kernels.
//
// The vector kernels (tensor/gemm.cpp, binary/bitmatrix.cpp,
// binary/xnor_gemm.cpp) each ship several variants of their inner loop:
// a portable scalar reference plus AVX2/SSE (x86) and, where implemented,
// NEON (arm) versions. Which variant runs is decided *once*, at the
// first kernel call, from three inputs:
//
//   1. what the compiler emitted (-march gates the __AVX2__/__SSE2__/
//      __ARM_NEON blocks; a variant that was not compiled in can never
//      be selected),
//   2. what the CPU reports at runtime (__builtin_cpu_supports probes,
//      so a binary built with wider -march on a narrower host falls
//      back instead of faulting),
//   3. the LCRS_SIMD environment variable (scalar|sse|avx2|neon), which
//      clamps the choice for testing -- the forced-scalar CI job runs
//      the whole suite with LCRS_SIMD=scalar so the fallback paths stay
//      exercised.
//
// Parity contract (see DESIGN.md "SIMD kernel layer"): every bit-domain
// kernel (sign packing, XNOR popcount) is bit-identical across levels;
// float GEMM variants keep each output's accumulation a single
// ascending-k chain, so they are row-pure at any batch size and agree
// with the scalar chain to ULP-level reassociation-free tolerance.
//
// A kernel with no variant for the active level silently uses the next
// one it does implement (ultimately scalar); dispatch is per kernel, so
// e.g. selecting kNeon on a host where only the pack kernel has a NEON
// variant still runs every other kernel correctly through scalar.
//
// Intrinsics policy (enforced by scripts/lint_invariants.py rule
// `simd-intrinsics`): raw vendor intrinsics may appear only in
// src/common/simd* and the kernel implementation files listed there.
#pragma once

#include <cstdint>

#if defined(__AVX2__)
#define LCRS_SIMD_COMPILED_AVX2 1
#else
#define LCRS_SIMD_COMPILED_AVX2 0
#endif

#if defined(__SSE2__)
#define LCRS_SIMD_COMPILED_SSE 1
#else
#define LCRS_SIMD_COMPILED_SSE 0
#endif

#if defined(__ARM_NEON) || defined(__ARM_NEON__)
#define LCRS_SIMD_COMPILED_NEON 1
#else
#define LCRS_SIMD_COMPILED_NEON 0
#endif

namespace lcrs::simd {

/// Instruction-set levels the dispatcher knows about. The numeric order
/// encodes x86 preference (AVX2 over SSE over scalar); kNeon is its own
/// island -- it never competes with the x86 levels on one host.
enum class Level : int {
  kScalar = 0,
  kSse = 1,
  kAvx2 = 2,
  kNeon = 3,
};

const char* level_name(Level level);

/// True when `level`'s code paths were compiled into this binary AND the
/// running CPU supports them (kScalar is always available).
bool level_available(Level level);

/// The level kernels should dispatch on. Detection + LCRS_SIMD parsing
/// run once (thread-safe) and the result is cached; after that this is
/// one relaxed atomic load, cheap enough for per-call use. An
/// unavailable or unparseable LCRS_SIMD value logs a warning and falls
/// back to scalar (deterministic, never faults).
Level active_level();

/// Test/bench-only override of active_level(), restored on destruction.
/// Checks the forced level is available. The override is a process-wide
/// atomic: establish it while no kernels are in flight (property tests
/// and the A/B benches do), not to steer concurrent traffic.
class ScopedForcedLevel {
 public:
  explicit ScopedForcedLevel(Level level);
  ~ScopedForcedLevel();

  ScopedForcedLevel(const ScopedForcedLevel&) = delete;
  ScopedForcedLevel& operator=(const ScopedForcedLevel&) = delete;

 private:
  int previous_;  // raw override slot value to restore (-1 = none)
};

}  // namespace lcrs::simd
