#include "common/bytes.h"

#include <fstream>

namespace lcrs {

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("cannot open for writing: " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw IoError("short write to: " + path);
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw IoError("cannot open for reading: " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) throw IoError("short read from: " + path);
  return bytes;
}

}  // namespace lcrs
