// Byte-buffer serialization primitives.
//
// All on-disk model formats and on-the-wire protocol frames in this repo
// are built from these two classes. Encoding is explicit little-endian so
// serialized artifacts are portable across hosts, mirroring the paper's
// flow of exporting trained weights into a browser-loadable blob.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.h"

namespace lcrs {

/// Appends primitive values to a growable byte vector.
class ByteWriter {
 public:
  void write_u8(std::uint8_t v) { buf_.push_back(v); }

  void write_u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void write_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void write_i64(std::int64_t v) { write_u64(static_cast<std::uint64_t>(v)); }

  void write_f32(float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    write_u32(bits);
  }

  void write_f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    write_u64(bits);
  }

  /// Length-prefixed UTF-8 string. The length prefix is 32-bit, so a
  /// string that cannot be represented must be rejected here -- a silent
  /// truncating cast would write a prefix that disagrees with the bytes
  /// behind it and corrupt everything downstream of the mismatch.
  void write_string(const std::string& s) {
    if (s.size() > UINT32_MAX) {
      throw InvalidArgument("ByteWriter: string of " +
                            std::to_string(s.size()) +
                            " bytes does not fit a u32 length prefix");
    }
    write_u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void write_bytes(const void* data, std::size_t n) {
    if (n == 0) return;  // empty spans may come with a null pointer
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Reads primitives back out of a byte span; throws ParseError on
/// truncation so malformed model files / frames fail loudly.
///
/// Every read_* method gives the strong exception guarantee: a read
/// either succeeds and consumes exactly its width, or throws with the
/// cursor untouched. Multi-part reads (read_string) therefore validate
/// the declared length against remaining() *before* consuming the
/// prefix. The fuzz harness fuzz_bytes.cpp asserts this for arbitrary
/// read sequences over arbitrary buffers.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  explicit ByteReader(const std::vector<std::uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  std::uint8_t read_u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint32_t read_u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }

  std::uint64_t read_u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }

  std::int64_t read_i64() { return static_cast<std::int64_t>(read_u64()); }

  float read_f32() {
    const std::uint32_t bits = read_u32();
    float v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  double read_f64() {
    const std::uint64_t bits = read_u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string read_string() {
    need(4);
    std::uint32_t n = 0;
    for (int i = 0; i < 4; ++i) {
      n |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    // Validate the declared length before consuming the prefix so a
    // truncated string leaves the cursor exactly where it was.
    if (size_ - pos_ - 4 < n) {
      throw ParseError("ByteReader: truncated string (declared " +
                       std::to_string(n) + " bytes, have " +
                       std::to_string(size_ - pos_ - 4) + ")");
    }
    pos_ += 4;
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  void read_bytes(void* out, std::size_t n) {
    need(n);
    if (n == 0) return;  // out may be null for an empty destination span
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool at_end() const { return pos_ == size_; }

 private:
  void need(std::size_t n) const {
    if (size_ - pos_ < n) {
      throw ParseError("ByteReader: truncated input (need " +
                       std::to_string(n) + " bytes, have " +
                       std::to_string(size_ - pos_) + ")");
    }
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Writes `bytes` to `path`, replacing any existing file.
void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes);

/// Reads the whole file at `path`; throws IoError when unreadable.
std::vector<std::uint8_t> read_file(const std::string& path);

}  // namespace lcrs
