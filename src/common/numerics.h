// Opt-in numerics sanitizer.
//
// Binarized training fails silently: a NaN born in an STE backward or an
// exploding Adam update poisons every later batch without tripping a
// single LCRS_CHECK. This module provides a process-wide toggle plus a
// scanner that layers, optimizers, and the webinfer engine call on their
// hot tensors. Disabled it costs one relaxed atomic load per call site;
// enabled it scans for NaN, Inf, and finite-but-exploding magnitudes and
// throws NumericsError naming the offending stage, tensor, and the first
// bad flat index.
//
// The default state is off; build with -DLCRS_CHECK_NUMERICS=ON (CMake) to
// default it on, or flip it at runtime with numerics::set_enabled /
// numerics::ScopedEnable.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/error.h"

namespace lcrs {

/// Thrown when the numerics sanitizer finds a NaN/Inf/exploding value.
class NumericsError : public Error {
 public:
  explicit NumericsError(const std::string& what) : Error(what) {}
};

namespace numerics {

/// True when numeric scanning is active. Cheap enough for hot paths.
bool enabled();

/// Turns scanning on or off for the whole process.
void set_enabled(bool on);

/// Finite values with |x| above this limit count as exploding. A
/// non-positive limit disables the magnitude rule (NaN/Inf still fail).
double magnitude_limit();
void set_magnitude_limit(double limit);

/// RAII toggle for tests and scoped debugging runs.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on = true) : prev_(enabled()) { set_enabled(on); }
  ~ScopedEnable() { set_enabled(prev_); }
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool prev_;
};

/// Scans data[0, n). On the first NaN, Inf, or |x| > magnitude_limit()
/// throws NumericsError formatted as
///   "numerics: <stage> of <what>: <NaN|Inf|magnitude L> at index <i> of <n>".
/// `stage` tags the pipeline step ("forward output", "gradient", ...);
/// `what` names the tensor's owner ("layer 3 (conv2d)", "param conv1.w").
/// No-op when the sanitizer is disabled, so callers may invoke it
/// unconditionally.
void check_values(const char* stage, const std::string& what,
                  const float* data, std::int64_t n);

}  // namespace numerics
}  // namespace lcrs
