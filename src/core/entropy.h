// Normalized entropy confidence measure (paper Eq. 7).
#pragma once

#include "tensor/tensor.h"

namespace lcrs::core {

/// S(x) = -sum_i x_i log x_i / log |C| for a probability vector x.
/// Returns a value in [0, 1]: 0 = fully confident, 1 = uniform.
double normalized_entropy(const float* probs, std::int64_t classes);

/// Row-wise normalized entropy of a [batch x classes] probability tensor.
Tensor normalized_entropy_rows(const Tensor& probs);

}  // namespace lcrs::core
