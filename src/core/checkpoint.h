// Whole-composite checkpointing: one artifact holding the model
// configuration, all three stages' parameters (and batch-norm state), and
// the screened exit threshold -- everything needed to resume serving.
#pragma once

#include <string>

#include "core/composite.h"
#include "core/exit_policy.h"
#include "models/zoo.h"

namespace lcrs::core {

/// Everything a checkpoint round-trips.
struct Checkpoint {
  models::ModelConfig config;
  models::BinaryBranchConfig branch;
  double tau = 0.05;  // screened exit threshold
};

/// Serializes `net` (built from `ckpt.config` / `ckpt.branch`) with its
/// metadata into one byte blob.
std::vector<std::uint8_t> save_composite(CompositeNetwork& net,
                                         const Checkpoint& ckpt);

/// Rebuilds the network from the stored configuration and restores every
/// parameter; returns the network plus its metadata. Throws ParseError on
/// malformed input.
struct LoadedComposite {
  CompositeNetwork net;
  Checkpoint ckpt;
};
LoadedComposite load_composite(const std::vector<std::uint8_t>& bytes);

/// File convenience wrappers.
void save_composite_file(CompositeNetwork& net, const Checkpoint& ckpt,
                         const std::string& path);
LoadedComposite load_composite_file(const std::string& path);

/// Registry-facing identity of a model bundle: which registry slot it
/// fills (`model_id`), which generation of that slot it is (`version`,
/// strictly increasing per id), and a human-readable name.
struct BundleInfo {
  std::uint32_t model_id = 0;
  std::uint32_t version = 0;
  std::string name;
};

/// A versioned on-disk model artifact: BundleInfo + an embedded composite
/// checkpoint. This is the unit the edge server's ModelRegistry loads and
/// hot-swaps.
struct LoadedBundle {
  BundleInfo info;
  LoadedComposite loaded;
};

/// Serializes `net` with its checkpoint metadata and bundle identity into
/// one byte blob. Rejects model_id == 0 (reserved for the server's
/// built-in default), version == 0, and names longer than 256 bytes.
std::vector<std::uint8_t> save_bundle(CompositeNetwork& net,
                                      const Checkpoint& ckpt,
                                      const BundleInfo& info);

/// Parses a bundle and rebuilds its network; throws ParseError on
/// malformed input (same reject-before-allocate discipline as
/// load_composite).
LoadedBundle load_bundle(const std::vector<std::uint8_t>& bytes);

/// File convenience wrappers.
void save_bundle_file(CompositeNetwork& net, const Checkpoint& ckpt,
                      const BundleInfo& info, const std::string& path);
LoadedBundle load_bundle_file(const std::string& path);

/// True when `bytes` starts with the bundle magic (used by lcrs_tool to
/// accept either a bare checkpoint or a bundle on the same flag).
bool looks_like_bundle(const std::vector<std::uint8_t>& bytes);

}  // namespace lcrs::core
