// Whole-composite checkpointing: one artifact holding the model
// configuration, all three stages' parameters (and batch-norm state), and
// the screened exit threshold -- everything needed to resume serving.
#pragma once

#include <string>

#include "core/composite.h"
#include "core/exit_policy.h"
#include "models/zoo.h"

namespace lcrs::core {

/// Everything a checkpoint round-trips.
struct Checkpoint {
  models::ModelConfig config;
  models::BinaryBranchConfig branch;
  double tau = 0.05;  // screened exit threshold
};

/// Serializes `net` (built from `ckpt.config` / `ckpt.branch`) with its
/// metadata into one byte blob.
std::vector<std::uint8_t> save_composite(CompositeNetwork& net,
                                         const Checkpoint& ckpt);

/// Rebuilds the network from the stored configuration and restores every
/// parameter; returns the network plus its metadata. Throws ParseError on
/// malformed input.
struct LoadedComposite {
  CompositeNetwork net;
  Checkpoint ckpt;
};
LoadedComposite load_composite(const std::vector<std::uint8_t>& bytes);

/// File convenience wrappers.
void save_composite_file(CompositeNetwork& net, const Checkpoint& ckpt,
                         const std::string& path);
LoadedComposite load_composite_file(const std::string& path);

}  // namespace lcrs::core
