// Early-exit decision for the binary branch (paper Sec. IV-C).
//
// A sample exits at the browser when the normalized entropy of the binary
// softmax is below tau. choose_threshold implements the BranchyNet-style
// screening the paper cites: scan candidate taus on a validation set and
// pick the largest (most-exiting) tau whose exited subset still satisfies
// an accuracy constraint.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace lcrs::core {

/// Where a request's final prediction came from. kBinaryBranchFallback
/// means the sample *wanted* the edge's main branch but the edge was
/// unreachable (or the deadline expired), so the runtime degraded
/// gracefully to the binary branch's answer instead of failing the
/// request.
enum class ExitPoint { kBinaryBranch, kMainBranch, kBinaryBranchFallback };

/// Human-readable name for logs and demos.
const char* to_string(ExitPoint p);

/// Records one exit decision into the global metrics registry: a
/// counter per ExitPoint plus a histogram of the normalized entropy that
/// drove it (bucketed on the tau candidate grid), so tau can be tuned
/// from a snapshot instead of rerunning experiments. Thread-safe;
/// called from every collaborative-inference path.
void record_exit_decision(ExitPoint decision, double entropy);

/// Threshold policy on normalized entropy.
struct ExitPolicy {
  double tau = 0.05;

  /// True when the sample should exit from the binary branch.
  bool should_exit(double entropy) const { return entropy < tau; }
};

/// Alternative gate used by several early-exit systems: exit when the
/// top softmax probability clears a threshold. Exposed for the policy
/// ablation; LCRS itself uses the paper's entropy gate.
struct MaxProbPolicy {
  double min_top_prob = 0.9;

  /// `probs` is one softmax row.
  bool should_exit(const float* probs, std::int64_t classes) const;
};


/// One validation sample's screening record.
struct ExitSample {
  double entropy = 0.0;
  bool binary_correct = false;
};

/// Converts max-prob screening records into ExitSample form (confidence
/// mapped to 1 - top_prob) so the same choose_threshold machinery can
/// screen either gate.
std::vector<ExitSample> maxprob_samples_from_probs(
    const std::vector<std::vector<float>>& prob_rows,
    const std::vector<bool>& correct);

/// Statistics of a candidate threshold over a screening set.
struct ExitStats {
  double tau = 0.0;
  double exit_fraction = 0.0;       // P(exit at browser)
  double exited_accuracy = 0.0;     // accuracy among exited samples
};

/// Evaluates a specific tau over screening samples.
ExitStats evaluate_threshold(const std::vector<ExitSample>& samples,
                             double tau);

/// Screens `candidates` (ascending) and returns the largest tau whose
/// exited-subset accuracy stays >= min_exit_accuracy; falls back to the
/// smallest candidate when none qualifies.
ExitStats choose_threshold(const std::vector<ExitSample>& samples,
                           const std::vector<double>& candidates,
                           double min_exit_accuracy);

/// Default candidate grid covering the paper's reported range
/// (1e-4 .. 5e-2 and beyond).
std::vector<double> default_tau_grid();

}  // namespace lcrs::core
