#include "core/checkpoint.h"

#include "common/bytes.h"
#include "nn/model_io.h"

namespace lcrs::core {

namespace {
constexpr std::uint32_t kCheckpointMagic = 0x4c435243;  // "LCRC"
constexpr std::uint32_t kVersion = 1;

constexpr std::uint32_t kBundleMagic = 0x4c435242;  // "LCRB"
constexpr std::uint32_t kBundleVersion = 1;
constexpr std::size_t kBundleNameCap = 256;

void write_config(ByteWriter& w, const models::ModelConfig& cfg) {
  w.write_string(models::arch_name(cfg.arch));
  w.write_i64(cfg.in_channels);
  w.write_i64(cfg.in_h);
  w.write_i64(cfg.in_w);
  w.write_i64(cfg.num_classes);
  w.write_f64(cfg.width);
  w.write_f64(cfg.dropout);
}

models::ModelConfig read_config(ByteReader& r) {
  models::ModelConfig cfg;
  cfg.arch = models::arch_by_name(r.read_string());
  cfg.in_channels = r.read_i64();
  cfg.in_h = r.read_i64();
  cfg.in_w = r.read_i64();
  cfg.num_classes = r.read_i64();
  cfg.width = r.read_f64();
  cfg.dropout = r.read_f64();
  // Wire-side caps on top of ModelConfig::validate (which only checks
  // lower bounds): load_composite rebuilds the network from these fields
  // before the parameter blobs are parsed, so a forged checkpoint with
  // absurd dimensions must be rejected here, not discovered as an OOM
  // inside CompositeNetwork::build. Caps are far above every shipped
  // config (paper inputs are 28x28 / 224x224).
  if (cfg.in_channels > 64 || cfg.in_h > 1024 || cfg.in_w > 1024 ||
      cfg.num_classes > 4096) {
    throw ParseError("checkpoint config exceeds wire-format caps");
  }
  cfg.validate();
  return cfg;
}

void write_branch(ByteWriter& w, const models::BinaryBranchConfig& bc) {
  w.write_i64(bc.n_binary_conv);
  w.write_i64(bc.n_binary_fc);
  w.write_i64(bc.conv_channels);
  w.write_i64(bc.fc_width);
}

models::BinaryBranchConfig read_branch(ByteReader& r) {
  // Range-check before narrowing: the wire carries i64 but the struct
  // holds int counts, and the values size network allocations.
  const std::int64_t n_conv = r.read_i64();
  const std::int64_t n_fc = r.read_i64();
  const std::int64_t conv_channels = r.read_i64();
  const std::int64_t fc_width = r.read_i64();
  if (n_conv < 0 || n_conv > 16 || n_fc < 0 || n_fc > 16 ||
      conv_channels < 1 || conv_channels > 1024 || fc_width < 1 ||
      fc_width > 8192) {
    throw ParseError("checkpoint branch config exceeds wire-format caps");
  }
  models::BinaryBranchConfig bc;
  bc.n_binary_conv = static_cast<int>(n_conv);
  bc.n_binary_fc = static_cast<int>(n_fc);
  bc.conv_channels = conv_channels;
  bc.fc_width = fc_width;
  return bc;
}

void write_stage(ByteWriter& w, nn::Sequential& stage) {
  const auto bytes = nn::save_params(stage);
  w.write_u32(static_cast<std::uint32_t>(bytes.size()));
  w.write_bytes(bytes.data(), bytes.size());
}

void read_stage(ByteReader& r, nn::Sequential& stage) {
  const std::uint32_t size = r.read_u32();
  // The declared length comes straight off the wire: bound it by what is
  // actually present before allocating (a forged 4 GiB prefix must fail
  // as a ParseError, not as an allocation).
  if (size > r.remaining()) {
    throw ParseError("checkpoint stage declares " + std::to_string(size) +
                     " bytes but only " + std::to_string(r.remaining()) +
                     " remain");
  }
  std::vector<std::uint8_t> bytes(size);
  r.read_bytes(bytes.data(), size);
  nn::load_params(stage, bytes);
}

}  // namespace

std::vector<std::uint8_t> save_composite(CompositeNetwork& net,
                                         const Checkpoint& ckpt) {
  ByteWriter w;
  w.write_u32(kCheckpointMagic);
  w.write_u32(kVersion);
  write_config(w, ckpt.config);
  write_branch(w, ckpt.branch);
  w.write_f64(ckpt.tau);
  write_stage(w, net.shared_stage());
  write_stage(w, net.main_rest());
  write_stage(w, net.binary_branch());
  return w.take();
}

LoadedComposite load_composite(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  if (r.read_u32() != kCheckpointMagic) {
    throw ParseError("bad checkpoint magic");
  }
  if (r.read_u32() != kVersion) {
    throw ParseError("unsupported checkpoint version");
  }
  Checkpoint ckpt;
  ckpt.config = read_config(r);
  ckpt.branch = read_branch(r);
  ckpt.tau = r.read_f64();

  // Rebuild with a throwaway RNG; every parameter is overwritten below.
  Rng rng(0);
  CompositeNetwork net =
      CompositeNetwork::build(ckpt.config, ckpt.branch, rng);
  read_stage(r, net.shared_stage());
  read_stage(r, net.main_rest());
  read_stage(r, net.binary_branch());
  if (!r.at_end()) {
    throw ParseError("trailing bytes after checkpoint");
  }
  return LoadedComposite{std::move(net), ckpt};
}

void save_composite_file(CompositeNetwork& net, const Checkpoint& ckpt,
                         const std::string& path) {
  write_file(path, save_composite(net, ckpt));
}

LoadedComposite load_composite_file(const std::string& path) {
  return load_composite(read_file(path));
}

std::vector<std::uint8_t> save_bundle(CompositeNetwork& net,
                                      const Checkpoint& ckpt,
                                      const BundleInfo& info) {
  if (info.model_id == 0) {
    throw InvalidArgument("bundle model id 0 is reserved for the default");
  }
  if (info.version == 0) {
    throw InvalidArgument("bundle version must be >= 1");
  }
  if (info.name.size() > kBundleNameCap) {
    throw InvalidArgument("bundle name exceeds " +
                          std::to_string(kBundleNameCap) + " bytes");
  }
  ByteWriter w;
  w.write_u32(kBundleMagic);
  w.write_u32(kBundleVersion);
  w.write_u32(info.model_id);
  w.write_u32(info.version);
  w.write_string(info.name);
  const auto inner = save_composite(net, ckpt);
  w.write_u32(static_cast<std::uint32_t>(inner.size()));
  w.write_bytes(inner.data(), inner.size());
  return w.take();
}

LoadedBundle load_bundle(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  if (r.read_u32() != kBundleMagic) {
    throw ParseError("bad bundle magic");
  }
  if (r.read_u32() != kBundleVersion) {
    throw ParseError("unsupported bundle version");
  }
  BundleInfo info;
  info.model_id = r.read_u32();
  info.version = r.read_u32();
  // Mirror save_bundle's canonical-form rules so a decoded bundle always
  // re-encodes byte-identically (the fuzz harness's round-trip oracle).
  if (info.model_id == 0) {
    throw ParseError("bundle model id 0 is reserved for the default");
  }
  if (info.version == 0) {
    throw ParseError("bundle version must be >= 1");
  }
  info.name = r.read_string();
  if (info.name.size() > kBundleNameCap) {
    throw ParseError("bundle name exceeds wire-format cap");
  }
  const std::uint32_t inner_size = r.read_u32();
  // Bound the declared length by what is actually present before
  // allocating, like read_stage above.
  if (inner_size > r.remaining()) {
    throw ParseError("bundle checkpoint declares " +
                     std::to_string(inner_size) + " bytes but only " +
                     std::to_string(r.remaining()) + " remain");
  }
  std::vector<std::uint8_t> inner(inner_size);
  r.read_bytes(inner.data(), inner_size);
  if (!r.at_end()) {
    throw ParseError("trailing bytes after bundle");
  }
  return LoadedBundle{std::move(info), load_composite(inner)};
}

void save_bundle_file(CompositeNetwork& net, const Checkpoint& ckpt,
                      const BundleInfo& info, const std::string& path) {
  write_file(path, save_bundle(net, ckpt, info));
}

LoadedBundle load_bundle_file(const std::string& path) {
  return load_bundle(read_file(path));
}

bool looks_like_bundle(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < sizeof(std::uint32_t)) return false;
  ByteReader r(bytes.data(), sizeof(std::uint32_t));
  return r.read_u32() == kBundleMagic;
}

}  // namespace lcrs::core
