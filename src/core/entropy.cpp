#include "core/entropy.h"

#include <cmath>

#include "common/error.h"

namespace lcrs::core {

double normalized_entropy(const float* probs, std::int64_t classes) {
  LCRS_CHECK(classes >= 2, "entropy needs >= 2 classes");
  double h = 0.0;
  for (std::int64_t i = 0; i < classes; ++i) {
    const double p = probs[i];
    if (p > 0.0) h -= p * std::log(p);
  }
  return h / std::log(static_cast<double>(classes));
}

Tensor normalized_entropy_rows(const Tensor& probs) {
  LCRS_CHECK(probs.rank() == 2, "entropy rows expects rank-2");
  const std::int64_t n = probs.dim(0), c = probs.dim(1);
  Tensor out{Shape{n}};
  for (std::int64_t b = 0; b < n; ++b) {
    out[b] =
        static_cast<float>(normalized_entropy(probs.data() + b * c, c));
  }
  return out;
}

}  // namespace lcrs::core
