// Joint training of the composite network (paper Algorithm 1, Eq. 1-6).
//
// Each minibatch runs one forward through the shared stage and both
// branches, computes the summed softmax cross-entropy loss (Eq. 1), and
// backpropagates both branch gradients jointly into the shared stage.
// The two branches keep separate optimizers/learning rates, mirroring
// Algorithm 1's separate eta_main / eta_binary updates; binary layers
// internally binarize on forward and apply Eq. 5/6 on backward while the
// optimizer updates full-precision master weights.
#pragma once

#include <functional>
#include <memory>

#include "core/composite.h"
#include "core/exit_policy.h"
#include "data/dataset.h"
#include "nn/optimizer.h"

namespace lcrs::core {

/// Training hyper-parameters.
struct TrainConfig {
  std::int64_t epochs = 10;
  std::int64_t batch_size = 32;
  double lr_main = 1e-3;
  double lr_binary = 2e-3;  // binary branch converges slower through STE
  double weight_decay_main = 1e-4;   // deep mains overfit small sets fast
  double weight_decay_binary = 0.0;  // master weights live in [-1, 1]
  double grad_clip_norm = 5.0;       // global-norm clip per branch;
                                     // <= 0 disables
  std::int64_t lr_decay_epochs = 8;  // StepDecay period
  double lr_decay_gamma = 0.5;
  // Tau screening constraint on the accuracy of exited samples. When
  // exit_accuracy_auto is true the constraint is the measured main-branch
  // accuracy: a browser exit should be no worse than asking the edge.
  double min_exit_accuracy = 0.90;
  bool exit_accuracy_auto = true;
  bool verbose = true;
};

/// Per-epoch evaluation record (feeds the Fig. 5 training curves).
struct EpochStats {
  std::int64_t epoch = 0;
  double train_loss = 0.0;
  double main_accuracy = 0.0;
  double binary_accuracy = 0.0;
};

/// Final outcome of a joint training run (one Table I row).
struct TrainResult {
  std::vector<EpochStats> curve;
  double main_accuracy = 0.0;    // M_Acc on the test set
  double binary_accuracy = 0.0;  // B_Acc on the test set
  ExitStats exit_stats;          // screened tau + exit fraction
};

class JointTrainer {
 public:
  JointTrainer(CompositeNetwork& net, const TrainConfig& cfg);

  /// Runs Algorithm 1 over the training set, evaluating on the test set
  /// each epoch; afterwards screens tau on the test set.
  TrainResult train(const data::Dataset& train_set,
                    const data::Dataset& test_set, Rng& rng);

  /// One optimizer step on a single minibatch; returns the joint loss.
  double train_batch(const Tensor& images,
                     const std::vector<std::int64_t>& labels);

  /// Branch accuracies over a dataset (inference mode, batched).
  std::pair<double, double> evaluate(const data::Dataset& ds,
                                     std::int64_t batch_size = 64);

  /// Screening records (entropy + binary correctness) for tau selection.
  std::vector<ExitSample> screen(const data::Dataset& ds,
                                 std::int64_t batch_size = 64);

 private:
  CompositeNetwork& net_;
  TrainConfig cfg_;
  std::unique_ptr<nn::Optimizer> opt_main_;
  std::unique_ptr<nn::Optimizer> opt_binary_;
};

}  // namespace lcrs::core
