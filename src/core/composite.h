// The LCRS composite network (paper Fig. 2): a shared first convolutional
// stage feeding both the full-precision main branch (edge server) and the
// binary side branch (mobile web browser).
#pragma once

#include <memory>

#include "models/zoo.h"
#include "nn/sequential.h"

namespace lcrs::core {

/// Outputs of one composite forward pass.
struct CompositeOutput {
  Tensor shared;         // conv1 feature map [N, C, H, W]
  Tensor main_logits;    // [N, classes]
  Tensor binary_logits;  // [N, classes]
};

class CompositeNetwork {
 public:
  /// Assembles from a split main branch and a binary branch built on the
  /// shared stage's output geometry.
  CompositeNetwork(models::MainBranch main,
                   std::unique_ptr<nn::Sequential> binary_branch,
                   std::int64_t num_classes);

  /// Convenience builder: main branch + its default binary branch.
  static CompositeNetwork build(const models::ModelConfig& cfg, Rng& rng);
  static CompositeNetwork build(const models::ModelConfig& cfg,
                                const models::BinaryBranchConfig& bc,
                                Rng& rng);

  /// Full forward through shared stage and both branches.
  CompositeOutput forward(const Tensor& input, bool train);

  /// Browser-side forward only: shared stage + binary branch.
  CompositeOutput forward_binary_only(const Tensor& input);

  /// Edge-side completion: main-branch logits from a conv1 feature map.
  Tensor forward_main_from_shared(const Tensor& shared);

  /// Joint backward for Eq. 1: both branch gradients flow into the shared
  /// stage. Call after forward(train=true).
  void backward(const Tensor& grad_main_logits,
                const Tensor& grad_binary_logits);

  std::vector<nn::Param*> params();
  void zero_grad();

  /// Parameters of (shared + main rest) and (binary branch) separately --
  /// Algorithm 1 trains them with separate optimizers/learning rates.
  std::vector<nn::Param*> main_params();
  std::vector<nn::Param*> binary_params();

  /// Packs every binary layer for the XNOR fast path.
  void prepare_browser_inference();

  /// Packs every Linear (transposed-weight eval GEMM) and Conv2d
  /// (panel-packed weight GEMM + batched im2col) in the main rest so
  /// serving-time completions skip all per-call weight preparation. Call
  /// before serving edge completions (main_branch_batch_completion does
  /// this); training invalidates the packs per-layer, so re-prepare
  /// afterwards.
  void prepare_edge_inference();

  nn::Sequential& shared_stage() { return *shared_; }
  nn::Sequential& main_rest() { return *main_rest_; }
  nn::Sequential& binary_branch() { return *binary_; }
  std::int64_t num_classes() const { return num_classes_; }
  std::int64_t shared_out_c() const { return shared_out_c_; }
  std::int64_t shared_out_h() const { return shared_out_h_; }
  std::int64_t shared_out_w() const { return shared_out_w_; }

 private:
  std::unique_ptr<nn::Sequential> shared_;
  std::unique_ptr<nn::Sequential> main_rest_;
  std::unique_ptr<nn::Sequential> binary_;
  std::int64_t num_classes_;
  std::int64_t shared_out_c_, shared_out_h_, shared_out_w_;
};

}  // namespace lcrs::core
