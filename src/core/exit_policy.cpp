#include "core/exit_policy.h"

#include <algorithm>

#include "common/error.h"
#include "common/obs/metric_names.h"
#include "common/obs/metrics.h"

namespace lcrs::core {

const char* to_string(ExitPoint p) {
  switch (p) {
    case ExitPoint::kBinaryBranch:
      return "binary-branch";
    case ExitPoint::kMainBranch:
      return "main-branch";
    case ExitPoint::kBinaryBranchFallback:
      return "binary-branch-fallback";
  }
  return "unknown";
}

void record_exit_decision(ExitPoint decision, double entropy) {
  obs::Registry& reg = obs::Registry::global();
  // Bucket the entropy histogram on the tau candidate grid (plus 1.0,
  // the normalized-entropy ceiling): each bucket count then reads
  // directly as "samples that would exit at this tau but not the next".
  static const std::vector<double> bounds = [] {
    std::vector<double> b = default_tau_grid();
    b.push_back(1.0);
    return b;
  }();
  reg.histogram(obs::names::kExitEntropy, bounds).record(entropy);
  switch (decision) {
    case ExitPoint::kBinaryBranch:
      reg.counter(obs::names::kExitBinary).add();
      break;
    case ExitPoint::kMainBranch:
      reg.counter(obs::names::kExitMain).add();
      break;
    case ExitPoint::kBinaryBranchFallback:
      reg.counter(obs::names::kExitFallback).add();
      break;
  }
}

ExitStats evaluate_threshold(const std::vector<ExitSample>& samples,
                             double tau) {
  LCRS_CHECK(!samples.empty(), "evaluate_threshold on empty screening set");
  std::int64_t exited = 0, exited_correct = 0;
  for (const auto& s : samples) {
    if (s.entropy < tau) {
      ++exited;
      if (s.binary_correct) ++exited_correct;
    }
  }
  ExitStats st;
  st.tau = tau;
  st.exit_fraction =
      static_cast<double>(exited) / static_cast<double>(samples.size());
  st.exited_accuracy =
      exited > 0 ? static_cast<double>(exited_correct) /
                       static_cast<double>(exited)
                 : 1.0;  // vacuously accurate: nothing exits
  return st;
}

ExitStats choose_threshold(const std::vector<ExitSample>& samples,
                           const std::vector<double>& candidates,
                           double min_exit_accuracy) {
  LCRS_CHECK(!candidates.empty(), "choose_threshold with no candidates");
  std::vector<double> sorted = candidates;
  std::sort(sorted.begin(), sorted.end());

  ExitStats best = evaluate_threshold(samples, sorted.front());
  for (const double tau : sorted) {
    const ExitStats st = evaluate_threshold(samples, tau);
    if (st.exited_accuracy >= min_exit_accuracy &&
        st.exit_fraction >= best.exit_fraction) {
      best = st;
    }
  }
  return best;
}

bool MaxProbPolicy::should_exit(const float* probs,
                                std::int64_t classes) const {
  LCRS_CHECK(classes >= 2, "max-prob gate needs >= 2 classes");
  float top = probs[0];
  for (std::int64_t i = 1; i < classes; ++i) top = std::max(top, probs[i]);
  return static_cast<double>(top) >= min_top_prob;
}

std::vector<ExitSample> maxprob_samples_from_probs(
    const std::vector<std::vector<float>>& prob_rows,
    const std::vector<bool>& correct) {
  LCRS_CHECK(prob_rows.size() == correct.size(),
             "maxprob screening size mismatch");
  std::vector<ExitSample> out;
  out.reserve(prob_rows.size());
  for (std::size_t i = 0; i < prob_rows.size(); ++i) {
    LCRS_CHECK(!prob_rows[i].empty(), "empty probability row");
    float top = prob_rows[i][0];
    for (const float p : prob_rows[i]) top = std::max(top, p);
    // Reuse the entropy machinery: "entropy" = 1 - top prob, so smaller
    // still means more confident and choose_threshold applies unchanged.
    out.push_back(ExitSample{1.0 - static_cast<double>(top), correct[i]});
  }
  return out;
}

std::vector<double> default_tau_grid() {
  return {1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 0.025, 0.045, 0.05,
          0.075, 0.1,  0.15, 0.2,  0.3,  0.4,   0.5,   0.7};
}

}  // namespace lcrs::core
