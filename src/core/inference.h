// Collaborative inference (paper Algorithm 2).
//
// The browser computes conv1 + binary branch; when the normalized entropy
// of the binary softmax clears tau the sample exits locally (LCRS-B),
// otherwise the conv1 feature map goes to the edge server which finishes
// the main branch (LCRS-M). This module is the pure decision logic; the
// simulated and socket runtimes in src/edge wrap it with transport.
#pragma once

#include "core/composite.h"
#include "core/exit_policy.h"

namespace lcrs::core {

// ExitPoint and to_string(ExitPoint) live in core/exit_policy.h (pulled
// in above) alongside record_exit_decision, so the edge runtimes can
// record fallback exits without depending on this header.

/// Result of Algorithm 2 for one sample.
struct InferenceResult {
  std::int64_t predicted = -1;
  ExitPoint exit_point = ExitPoint::kBinaryBranch;
  double entropy = 0.0;           // binary-branch normalized entropy
  Tensor shared;                  // conv1 output (what would be uploaded)
  Tensor probabilities;           // softmax of the deciding branch
};

/// Runs Algorithm 2 in-process on a [1, C, H, W] sample.
InferenceResult collaborative_infer(CompositeNetwork& net,
                                    const ExitPolicy& policy,
                                    const Tensor& sample);

/// Batched variant: per-sample decisions over [N, C, H, W]; samples that
/// miss the threshold are completed through the main branch together.
std::vector<InferenceResult> collaborative_infer_batch(
    CompositeNetwork& net, const ExitPolicy& policy, const Tensor& batch);

/// One batched edge-side completion: conv1 feature maps from k requests,
/// stacked [k, C, H, W], finished through the main branch in a single
/// Sequential forward. Row i of `probabilities` / `labels` is
/// bit-identical to completing request i alone -- every layer in the main
/// rest is row-independent in eval mode (im2col+GEMM, eval BatchNorm,
/// elementwise activations, row-wise softmax), which is what lets the
/// edge server batch across connections without changing any answer.
struct MainBatchCompletion {
  std::vector<std::int64_t> labels;  // argmax per row, length k
  Tensor probabilities;              // [k, num_classes] softmax rows
};

MainBatchCompletion complete_main_batch(CompositeNetwork& net,
                                        const Tensor& shared_batch);

}  // namespace lcrs::core
