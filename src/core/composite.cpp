#include "core/composite.h"

#include "binary/binary_conv2d.h"
#include "binary/binary_linear.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "tensor/tensor_ops.h"

namespace lcrs::core {

CompositeNetwork::CompositeNetwork(models::MainBranch main,
                                   std::unique_ptr<nn::Sequential> binary,
                                   std::int64_t num_classes)
    : shared_(std::move(main.conv1)),
      main_rest_(std::move(main.rest)),
      binary_(std::move(binary)),
      num_classes_(num_classes),
      shared_out_c_(main.out_c),
      shared_out_h_(main.out_h),
      shared_out_w_(main.out_w) {
  LCRS_CHECK(shared_ && main_rest_ && binary_, "null composite stage");
  LCRS_CHECK(num_classes >= 2, "composite needs >= 2 classes");
}

CompositeNetwork CompositeNetwork::build(const models::ModelConfig& cfg,
                                         Rng& rng) {
  return build(cfg, models::default_branch(cfg.arch), rng);
}

CompositeNetwork CompositeNetwork::build(
    const models::ModelConfig& cfg, const models::BinaryBranchConfig& bc,
    Rng& rng) {
  models::MainBranch main = models::build_main_branch(cfg, rng);
  auto branch = models::build_binary_branch(bc, main.out_c, main.out_h,
                                            main.out_w, cfg.num_classes, rng);
  return CompositeNetwork(std::move(main), std::move(branch),
                          cfg.num_classes);
}

CompositeOutput CompositeNetwork::forward(const Tensor& input, bool train) {
  CompositeOutput out;
  out.shared = shared_->forward(input, train);
  out.main_logits = main_rest_->forward(out.shared, train);
  out.binary_logits = binary_->forward(out.shared, train);
  return out;
}

CompositeOutput CompositeNetwork::forward_binary_only(const Tensor& input) {
  CompositeOutput out;
  out.shared = shared_->forward(input, /*train=*/false);
  out.binary_logits = binary_->forward(out.shared, /*train=*/false);
  return out;
}

Tensor CompositeNetwork::forward_main_from_shared(const Tensor& shared) {
  return main_rest_->forward(shared, /*train=*/false);
}

void CompositeNetwork::backward(const Tensor& grad_main_logits,
                                const Tensor& grad_binary_logits) {
  Tensor g_shared = main_rest_->backward(grad_main_logits);
  Tensor g_shared_binary = binary_->backward(grad_binary_logits);
  add_inplace(g_shared, g_shared_binary);  // Eq. 1: joint loss sum
  shared_->backward(g_shared);
}

std::vector<nn::Param*> CompositeNetwork::params() {
  std::vector<nn::Param*> all = shared_->params();
  for (nn::Param* p : main_rest_->params()) all.push_back(p);
  for (nn::Param* p : binary_->params()) all.push_back(p);
  return all;
}

std::vector<nn::Param*> CompositeNetwork::main_params() {
  std::vector<nn::Param*> ps = shared_->params();
  for (nn::Param* p : main_rest_->params()) ps.push_back(p);
  return ps;
}

std::vector<nn::Param*> CompositeNetwork::binary_params() {
  return binary_->params();
}

void CompositeNetwork::zero_grad() {
  shared_->zero_grad();
  main_rest_->zero_grad();
  binary_->zero_grad();
}

void CompositeNetwork::prepare_browser_inference() {
  for (std::size_t i = 0; i < binary_->size(); ++i) {
    nn::Layer& layer = binary_->layer(i);
    if (auto* bc = dynamic_cast<binary::BinaryConv2d*>(&layer)) {
      bc->prepare_inference();
    } else if (auto* bl = dynamic_cast<binary::BinaryLinear*>(&layer)) {
      bl->prepare_inference();
    }
  }
}

void CompositeNetwork::prepare_edge_inference() {
  for (std::size_t i = 0; i < main_rest_->size(); ++i) {
    if (auto* fc = dynamic_cast<nn::Linear*>(&main_rest_->layer(i))) {
      fc->prepare_inference();
    } else if (auto* conv = dynamic_cast<nn::Conv2d*>(&main_rest_->layer(i))) {
      conv->prepare_inference();
    }
  }
}

}  // namespace lcrs::core
