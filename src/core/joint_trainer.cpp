#include "core/joint_trainer.h"

#include <algorithm>

#include "common/logging.h"
#include "common/obs/metric_names.h"
#include "common/obs/metrics.h"
#include "common/stopwatch.h"
#include "core/entropy.h"
#include "nn/loss.h"
#include "nn/metrics.h"
#include "tensor/tensor_ops.h"

namespace lcrs::core {

JointTrainer::JointTrainer(CompositeNetwork& net, const TrainConfig& cfg)
    : net_(net), cfg_(cfg) {
  LCRS_CHECK(cfg.epochs >= 1 && cfg.batch_size >= 1, "bad train config");
  opt_main_ = std::make_unique<nn::Adam>(cfg.lr_main, 0.9, 0.999, 1e-8,
                                         cfg.weight_decay_main);
  opt_binary_ = std::make_unique<nn::Adam>(cfg.lr_binary, 0.9, 0.999, 1e-8,
                                           cfg.weight_decay_binary);
}

double JointTrainer::train_batch(const Tensor& images,
                                 const std::vector<std::int64_t>& labels) {
  Stopwatch watch;
  net_.zero_grad();
  CompositeOutput out = net_.forward(images, /*train=*/true);
  // Eq. 1: L = L_main + L_binary.
  nn::LossResult main_loss = nn::softmax_cross_entropy(out.main_logits, labels);
  nn::LossResult bin_loss =
      nn::softmax_cross_entropy(out.binary_logits, labels);
  net_.backward(main_loss.grad_logits, bin_loss.grad_logits);
  if (cfg_.grad_clip_norm > 0.0) {
    nn::clip_grad_norm(net_.main_params(), cfg_.grad_clip_norm);
    nn::clip_grad_norm(net_.binary_params(), cfg_.grad_clip_norm);
  }
  opt_main_->step(net_.main_params());
  opt_binary_->step(net_.binary_params());
  obs::Registry::global()
      .histogram(obs::names::kTrainBatchUs)
      .record(watch.micros());
  return main_loss.loss + bin_loss.loss;
}

TrainResult JointTrainer::train(const data::Dataset& train_set,
                                const data::Dataset& test_set, Rng& rng) {
  train_set.check();
  test_set.check();
  TrainResult result;
  const nn::StepDecay decay(cfg_.lr_decay_epochs, cfg_.lr_decay_gamma);

  data::Dataset shuffled = train_set;
  for (std::int64_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    decay.apply(*opt_main_, epoch, cfg_.lr_main);
    decay.apply(*opt_binary_, epoch, cfg_.lr_binary);
    data::shuffle(shuffled, rng);

    double loss_sum = 0.0;
    std::int64_t batches = 0;
    for (std::int64_t begin = 0; begin + cfg_.batch_size <= shuffled.size();
         begin += cfg_.batch_size) {
      const Tensor images =
          shuffled.images.slice_outer(begin, begin + cfg_.batch_size);
      const auto labels = shuffled.label_slice(begin, cfg_.batch_size);
      loss_sum += train_batch(images, labels);
      ++batches;
    }

    const auto [main_acc, bin_acc] = evaluate(test_set);
    EpochStats es;
    es.epoch = epoch;
    es.train_loss = batches > 0 ? loss_sum / static_cast<double>(batches)
                                : 0.0;
    es.main_accuracy = main_acc;
    es.binary_accuracy = bin_acc;
    result.curve.push_back(es);
    if (cfg_.verbose) {
      LCRS_INFO("epoch " << epoch << " loss " << es.train_loss << " M_acc "
                         << main_acc << " B_acc " << bin_acc);
    }
  }

  const auto [main_acc, bin_acc] = evaluate(test_set);
  result.main_accuracy = main_acc;
  result.binary_accuracy = bin_acc;
  const double constraint =
      cfg_.exit_accuracy_auto ? main_acc : cfg_.min_exit_accuracy;
  result.exit_stats =
      choose_threshold(screen(test_set), default_tau_grid(), constraint);

  if (cfg_.verbose && obs::profiling_enabled()) {
    // Per-layer breakdown from the Sequential profiling hooks: every
    // forward/backward this run fed the nn.layer.* histograms.
    const obs::Snapshot snap = obs::Registry::global().snapshot();
    for (const auto& h : snap.histograms) {
      if (h.name.rfind("nn.layer.", 0) == 0) {
        LCRS_INFO(h.name << " n=" << h.count << " mean_us=" << h.mean()
                         << " p99_us=" << h.percentile(0.99));
      }
    }
  }
  return result;
}

std::pair<double, double> JointTrainer::evaluate(const data::Dataset& ds,
                                                 std::int64_t batch_size) {
  LCRS_CHECK(ds.size() > 0, "evaluate on empty dataset");
  std::int64_t main_correct = 0, bin_correct = 0;
  for (std::int64_t begin = 0; begin < ds.size(); begin += batch_size) {
    const std::int64_t count = std::min(batch_size, ds.size() - begin);
    const Tensor images = ds.images.slice_outer(begin, begin + count);
    const auto labels = ds.label_slice(begin, count);
    CompositeOutput out = net_.forward(images, /*train=*/false);
    const auto main_pred = argmax_rows(out.main_logits);
    const auto bin_pred = argmax_rows(out.binary_logits);
    for (std::int64_t i = 0; i < count; ++i) {
      if (main_pred[static_cast<std::size_t>(i)] ==
          labels[static_cast<std::size_t>(i)]) {
        ++main_correct;
      }
      if (bin_pred[static_cast<std::size_t>(i)] ==
          labels[static_cast<std::size_t>(i)]) {
        ++bin_correct;
      }
    }
  }
  const double n = static_cast<double>(ds.size());
  return {static_cast<double>(main_correct) / n,
          static_cast<double>(bin_correct) / n};
}

std::vector<ExitSample> JointTrainer::screen(const data::Dataset& ds,
                                             std::int64_t batch_size) {
  std::vector<ExitSample> samples;
  samples.reserve(static_cast<std::size_t>(ds.size()));
  for (std::int64_t begin = 0; begin < ds.size(); begin += batch_size) {
    const std::int64_t count = std::min(batch_size, ds.size() - begin);
    const Tensor images = ds.images.slice_outer(begin, begin + count);
    const auto labels = ds.label_slice(begin, count);
    CompositeOutput out = net_.forward_binary_only(images);
    const Tensor probs = softmax_rows(out.binary_logits);
    const auto preds = argmax_rows(out.binary_logits);
    const std::int64_t classes = probs.dim(1);
    for (std::int64_t i = 0; i < count; ++i) {
      ExitSample s;
      s.entropy = normalized_entropy(probs.data() + i * classes, classes);
      s.binary_correct = preds[static_cast<std::size_t>(i)] ==
                         labels[static_cast<std::size_t>(i)];
      samples.push_back(s);
    }
  }
  return samples;
}

}  // namespace lcrs::core
