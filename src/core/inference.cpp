#include "core/inference.h"

#include "core/entropy.h"
#include "tensor/tensor_ops.h"

namespace lcrs::core {

InferenceResult collaborative_infer(CompositeNetwork& net,
                                    const ExitPolicy& policy,
                                    const Tensor& sample) {
  LCRS_CHECK(sample.rank() == 4 && sample.dim(0) == 1,
             "collaborative_infer expects a single [1,C,H,W] sample");
  InferenceResult r;
  CompositeOutput out = net.forward_binary_only(sample);
  r.shared = std::move(out.shared);

  const Tensor probs = softmax_rows(out.binary_logits);
  r.entropy = normalized_entropy(probs.data(), probs.dim(1));

  if (policy.should_exit(r.entropy)) {
    r.exit_point = ExitPoint::kBinaryBranch;
    r.probabilities = probs;
    r.predicted = argmax(probs);
    record_exit_decision(r.exit_point, r.entropy);
    return r;
  }

  // Fall back to the edge server's main branch on the shared features.
  const Tensor main_logits = net.forward_main_from_shared(r.shared);
  r.exit_point = ExitPoint::kMainBranch;
  r.probabilities = softmax_rows(main_logits);
  r.predicted = argmax(r.probabilities);
  record_exit_decision(r.exit_point, r.entropy);
  return r;
}

std::vector<InferenceResult> collaborative_infer_batch(
    CompositeNetwork& net, const ExitPolicy& policy, const Tensor& batch) {
  LCRS_CHECK(batch.rank() == 4, "batch must be NCHW");
  std::vector<InferenceResult> results;
  results.reserve(static_cast<std::size_t>(batch.dim(0)));
  for (std::int64_t i = 0; i < batch.dim(0); ++i) {
    results.push_back(
        collaborative_infer(net, policy, batch.slice_outer(i, i + 1)));
  }
  return results;
}

MainBatchCompletion complete_main_batch(CompositeNetwork& net,
                                        const Tensor& shared_batch) {
  LCRS_CHECK(shared_batch.rank() == 4 && shared_batch.dim(0) >= 1,
             "complete_main_batch expects a [k,C,H,W] feature batch");
  MainBatchCompletion out;
  const Tensor logits = net.forward_main_from_shared(shared_batch);
  out.probabilities = softmax_rows(logits);
  out.labels = argmax_rows(out.probabilities);
  return out;
}

}  // namespace lcrs::core
