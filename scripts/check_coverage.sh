#!/usr/bin/env bash
# Line + branch coverage gate: instrumented build (gcc --coverage, -O0),
# unit + integration test tiers, then scripts/coverage_report.py
# aggregates gcov JSON per module and fails if any module in
# scripts/coverage_floors.txt regresses below its floor.
#
# The report (pass or fail) lands in build-cov/coverage_report.txt --
# CI uploads it as an artifact either way.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc)}

if ! command -v gcov >/dev/null 2>&1; then
  echo "check_coverage: gcov not found (install gcc); skipping" >&2
  exit 0
fi

echo "check_coverage: configuring instrumented build (build-cov)"
cmake -B build-cov -S . -DLCRS_COVERAGE=ON >/dev/null

echo "check_coverage: building tests"
cmake --build build-cov -j"$JOBS" >/dev/null

# Stale .gcda from a previous run would double-count; start clean.
find build-cov -name '*.gcda' -delete

echo "check_coverage: running unit+integration tiers"
# test_baselines is a compute-bound convergence benchmark: under -O0
# instrumentation it blows its timeout and contributes no coverage the
# faster tests don't already provide. Skip it here only.
(cd build-cov && ctest -L 'unit|integration' -E '^test_baselines$' \
     --output-on-failure -j"$JOBS")

echo "check_coverage: aggregating gcov data"
python3 scripts/coverage_report.py --build-dir build-cov
