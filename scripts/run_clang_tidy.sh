#!/usr/bin/env bash
# clang-tidy driver over src/ using the project .clang-tidy profile.
#
# Reuses the compilation database from an existing build tree (the
# top-level CMakeLists exports compile_commands.json unconditionally;
# ${BUILD_DIR:-build} is probed first), configuring a throwaway tree
# only when none exists yet. Runs clang-tidy (or run-clang-tidy when
# available) over every src/ .cpp. WarningsAsErrors is '*' in
# .clang-tidy, so any finding exits nonzero.
#
# clang-tidy is an optional dependency: toolchains without it (e.g. the
# gcc-only CI image) skip with exit 0 and a loud warning so the rest of
# check_all.sh still gates. Set LCRS_TIDY_STRICT=1 to fail instead of
# skipping when the tool is missing.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
JOBS=${JOBS:-$(nproc)}

TIDY=${CLANG_TIDY:-}
if [[ -z "$TIDY" ]]; then
  for cand in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
              clang-tidy-16 clang-tidy-15; do
    if command -v "$cand" > /dev/null 2>&1; then
      TIDY=$cand
      break
    fi
  done
fi

if [[ -z "$TIDY" ]]; then
  if [[ "${LCRS_TIDY_STRICT:-0}" == "1" ]]; then
    echo "run_clang_tidy: clang-tidy not found and LCRS_TIDY_STRICT=1" >&2
    exit 1
  fi
  echo "run_clang_tidy: WARNING: clang-tidy not installed; skipping" \
       "(set LCRS_TIDY_STRICT=1 to make this an error)" >&2
  exit 0
fi

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "run_clang_tidy: no $BUILD_DIR/compile_commands.json; configuring..."
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Debug > /dev/null
fi

mapfile -t SOURCES < <(find src -name '*.cpp' | sort)
echo "run_clang_tidy: ${#SOURCES[@]} files with $TIDY"

if command -v run-clang-tidy > /dev/null 2>&1; then
  run-clang-tidy -clang-tidy-binary "$TIDY" -p "$BUILD_DIR" -j "$JOBS" \
    -quiet "${SOURCES[@]/#/^}"
else
  status=0
  for f in "${SOURCES[@]}"; do
    "$TIDY" -p "$BUILD_DIR" --quiet "$f" || status=1
  done
  exit $status
fi
