#!/usr/bin/env bash
# Clang thread-safety analysis gate: builds the whole tree (src/, tests/,
# bench/, examples/) with -DLCRS_THREAD_SAFETY=ON, which promotes
# -Wthread-safety and -Wthread-safety-beta to errors. Compiling IS the
# check -- every GUARDED_BY / REQUIRES / EXCLUDES relationship declared
# in common/sync.h is verified on every call path; any unannotated access
# to guarded state fails the build.
#
# The analysis only exists in Clang. Toolchains without clang++ (e.g. the
# gcc-only CI image) skip with exit 0 and a loud warning so the rest of
# check_all.sh still gates. Set LCRS_TS_STRICT=1 to fail instead of
# skipping when no Clang is found. Override compiler discovery with
# CLANGXX=/path/to/clang++.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build-ts}
JOBS=${JOBS:-$(nproc)}

CXX_BIN=${CLANGXX:-}
if [[ -z "$CXX_BIN" ]]; then
  for cand in clang++ clang++-19 clang++-18 clang++-17 clang++-16 \
              clang++-15; do
    if command -v "$cand" > /dev/null 2>&1; then
      CXX_BIN=$cand
      break
    fi
  done
fi

if [[ -z "$CXX_BIN" ]]; then
  if [[ "${LCRS_TS_STRICT:-0}" == "1" ]]; then
    echo "check_thread_safety: clang++ not found and LCRS_TS_STRICT=1" >&2
    exit 1
  fi
  echo "check_thread_safety: WARNING: clang++ not installed; skipping" \
       "-Wthread-safety analysis (set LCRS_TS_STRICT=1 to make this an" \
       "error)" >&2
  exit 0
fi

echo "check_thread_safety: building with $CXX_BIN and" \
     "-Werror=thread-safety{,-beta}"
cmake -B "$BUILD_DIR" -S . -DLCRS_THREAD_SAFETY=ON \
  -DCMAKE_CXX_COMPILER="$CXX_BIN" -DCMAKE_BUILD_TYPE=Debug > /dev/null
cmake --build "$BUILD_DIR" -j"$JOBS"

echo "check_thread_safety: clean."
