#!/usr/bin/env bash
# End-to-end smoke test of the ops plane through the shipped CLI.
#
# What it proves (beyond the unit/integration tests):
#   * `lcrs_tool serve <ckpt> <port> [ops_port]` boots an edge server with
#     the HTTP ops plane on a real ephemeral port;
#   * every endpoint answers over a real socket via `lcrs_tool scrape`;
#   * the /metrics body passes scripts/validate_prometheus.py (strict
#     exposition-format conformance, histogram cumulativity, +Inf==_count);
#   * /healthz//readyz report ok while serving, and the server shuts down
#     cleanly when stdin closes (the fifo trick below).
#
# Also runs the ops-plane ctest suites first so a failure localizes.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc)}

cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS" --target lcrs_tool test_ops_plane test_ops_http

echo "== ops smoke: ctest suites =="
(cd build && ctest -R '^test_ops_(plane|http)$' --output-on-failure -j2)

WORK=$(mktemp -d /tmp/ops-smoke-XXXXXX)
SERVE_PID=""
SMOKE_OK=0
cleanup() {
  # Closing the fifo's write end is the shutdown signal for cmd_serve.
  exec 3>&- 2>/dev/null || true
  if [[ -n "$SERVE_PID" ]]; then
    kill "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
  fi
  if [[ "$SMOKE_OK" == 1 ]]; then
    rm -rf "$WORK"
  else
    echo "check_ops_smoke: logs kept in $WORK" >&2
  fi
}
trap cleanup EXIT

echo "== ops smoke: train a tiny checkpoint =="
./build/examples/lcrs_tool train LeNet MNIST "$WORK/tiny.ckpt" 1 32 \
  > "$WORK/train.log"

echo "== ops smoke: boot lcrs_tool serve with an ephemeral ops port =="
mkfifo "$WORK/stdin.fifo"
# Open the fifo read-write on fd 3: never blocks, and holds a writer so
# the server's stdin stays open until we close fd 3 (= shutdown signal).
exec 3<> "$WORK/stdin.fifo"
# 3>&- matters: without it the server inherits our write end and its own
# stdin can never reach EOF.
./build/examples/lcrs_tool serve "$WORK/tiny.ckpt" 0 0 \
  < "$WORK/stdin.fifo" > "$WORK/serve.log" 3>&- &
SERVE_PID=$!

OPS_PORT=""
for _ in $(seq 1 100); do
  OPS_PORT=$(sed -n 's/^ops plane on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
             "$WORK/serve.log" 2>/dev/null || true)
  [[ -n "$OPS_PORT" ]] && break
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "check_ops_smoke: server exited early" >&2
    cat "$WORK/serve.log" >&2
    exit 1
  fi
  sleep 0.1
done
if [[ -z "$OPS_PORT" ]]; then
  echo "check_ops_smoke: never saw the ops-plane port line" >&2
  cat "$WORK/serve.log" >&2
  exit 1
fi
echo "ops plane is on port $OPS_PORT"

echo "== ops smoke: scrape every endpoint =="
SCRAPE=./build/examples/lcrs_tool
for path in /metrics /metrics.json /healthz /readyz /statusz /tracez /; do
  "$SCRAPE" scrape "$OPS_PORT" "$path" > /dev/null
  echo "  GET $path -> 200"
done

echo "== ops smoke: exposition conformance =="
"$SCRAPE" scrape "$OPS_PORT" /metrics > "$WORK/metrics.txt"
python3 scripts/validate_prometheus.py "$WORK/metrics.txt"

grep -q '^lcrs_edge_server_ready 1$' "$WORK/metrics.txt" \
  || { echo "check_ops_smoke: server not ready in exposition" >&2; exit 1; }
grep -q '^lcrs_process_uptime_seconds ' "$WORK/metrics.txt" \
  || { echo "check_ops_smoke: missing process uptime gauge" >&2; exit 1; }
[[ "$("$SCRAPE" scrape "$OPS_PORT" /healthz)" == "ok" ]] \
  || { echo "check_ops_smoke: /healthz body mismatch" >&2; exit 1; }

echo "== ops smoke: unknown path is a 404 without killing the server =="
if "$SCRAPE" scrape "$OPS_PORT" /no-such-endpoint > /dev/null 2>&1; then
  echo "check_ops_smoke: expected non-zero exit for 404" >&2
  exit 1
fi
"$SCRAPE" scrape "$OPS_PORT" /healthz > /dev/null

echo "== ops smoke: clean shutdown =="
exec 3>&-
SHUT_RC=0
wait "$SERVE_PID" || SHUT_RC=$?
SERVE_PID=""
if [[ "$SHUT_RC" != 0 ]]; then
  echo "check_ops_smoke: serve exited with $SHUT_RC" >&2
  cat "$WORK/serve.log" >&2
  exit 1
fi
grep -q '^served ' "$WORK/serve.log" \
  || { echo "check_ops_smoke: missing shutdown stats line" >&2; exit 1; }

SMOKE_OK=1
echo "check_ops_smoke: ops plane end-to-end clean"
