#!/usr/bin/env bash
# Runs every bench binary in sequence and records the combined output --
# the scripted form of `for b in build/bench/*; do $b; done`.
set -u
out="${1:-bench_output.txt}"
: > "$out"
for b in build/bench/*; do
  [ -x "$b" ] || continue
  echo "===== $b =====" | tee -a "$out"
  "$b" 2>&1 | tee -a "$out"
  echo | tee -a "$out"
done
