#!/usr/bin/env python3
"""Per-module line/branch coverage report with regression floors.

Walks a --coverage instrumented build tree (configure with
-DLCRS_COVERAGE=ON, run the test suite, then this script), feeds every
.gcda through `gcov --json-format`, and aggregates line and branch
counts per top-level module (src/<module>).

Headers and library objects are compiled into many translation units;
each TU reports the same (file, line) independently. We deduplicate by
taking the max count per (file, line) across TUs -- a line is covered if
ANY instantiation executed it, which matches the intuition behind the
floor gate.

Floors live in scripts/coverage_floors.txt:

    # module  min_line_pct  min_branch_pct
    src/common  90.0  55.0

The script exits non-zero if any floored module regresses below its
floor, and prints (and writes to --output) the full per-module table
either way, so CI uploads the report even on failure.
"""

import argparse
import json
import os
import subprocess
import sys
from collections import defaultdict
from pathlib import Path


def find_gcda(build_dir: Path):
    return sorted(build_dir.rglob("*.gcda"))


def run_gcov(gcda: Path, gcov: str):
    """Returns the parsed gcov JSON document for one .gcda, or None."""
    # gcov resolves the .gcno next to the .gcda and the source paths
    # recorded at compile time (absolute under CMake).
    proc = subprocess.run(
        [gcov, "--json-format", "--stdout", "--branch-probabilities",
         str(gcda)],
        capture_output=True, text=True)
    if proc.returncode != 0:
        print(f"coverage: gcov failed on {gcda}: {proc.stderr.strip()}",
              file=sys.stderr)
        return None
    # One JSON document per line (gcov emits one per input file).
    docs = []
    for line in proc.stdout.splitlines():
        line = line.strip()
        if line:
            docs.append(json.loads(line))
    return docs


def module_of(rel: str):
    """src/common/bytes.h -> src/common; non-src files -> None."""
    parts = Path(rel).parts
    if len(parts) >= 2 and parts[0] == "src":
        return f"src/{parts[1]}"
    return None


def aggregate(build_dir: Path, source_root: Path, gcov: str):
    """(file, line) -> max execution count, plus per-line branch counts."""
    line_counts = {}                   # (rel_file, line) -> max count
    branch_counts = defaultdict(list)  # (rel_file, line) -> [max per idx]
    gcdas = find_gcda(build_dir)
    if not gcdas:
        print(f"coverage: no .gcda files under {build_dir} -- "
              "build with -DLCRS_COVERAGE=ON and run the tests first",
              file=sys.stderr)
        sys.exit(2)
    for gcda in gcdas:
        docs = run_gcov(gcda, gcov)
        if not docs:
            continue
        for doc in docs:
            for f in doc.get("files", []):
                path = Path(f["file"])
                if not path.is_absolute():
                    path = (source_root / path).resolve()
                try:
                    rel = str(path.resolve().relative_to(source_root))
                except ValueError:
                    continue  # system header / external
                if module_of(rel) is None:
                    continue
                for ln in f.get("lines", []):
                    key = (rel, ln["line_number"])
                    cnt = ln["count"]
                    if cnt > line_counts.get(key, -1):
                        line_counts[key] = cnt
                    br = ln.get("branches", [])
                    if br:
                        slot = branch_counts[key]
                        for i, b in enumerate(br):
                            if i < len(slot):
                                slot[i] = max(slot[i], b["count"])
                            else:
                                slot.append(b["count"])
    return line_counts, branch_counts


def summarize(line_counts, branch_counts):
    """module -> dict(lines_total, lines_hit, br_total, br_taken)."""
    mods = defaultdict(lambda: dict(lines_total=0, lines_hit=0,
                                    br_total=0, br_taken=0))
    for (rel, _line), cnt in line_counts.items():
        m = mods[module_of(rel)]
        m["lines_total"] += 1
        if cnt > 0:
            m["lines_hit"] += 1
    for (rel, _line), branches in branch_counts.items():
        m = mods[module_of(rel)]
        m["br_total"] += len(branches)
        m["br_taken"] += sum(1 for c in branches if c > 0)
    return mods


def pct(hit, total):
    return 100.0 * hit / total if total else 100.0


def load_floors(path: Path):
    floors = {}
    if not path.exists():
        return floors
    for raw in path.read_text().splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        if len(fields) != 3:
            print(f"coverage: malformed floor line: {raw!r}",
                  file=sys.stderr)
            sys.exit(2)
        floors[fields[0]] = (float(fields[1]), float(fields[2]))
    return floors


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", type=Path, default=Path("build-cov"))
    ap.add_argument("--source-root", type=Path,
                    default=Path(__file__).resolve().parent.parent)
    ap.add_argument("--floors", type=Path,
                    default=Path(__file__).resolve().parent
                    / "coverage_floors.txt")
    ap.add_argument("--output", type=Path, default=None,
                    help="also write the report here "
                         "(default: <build-dir>/coverage_report.txt)")
    ap.add_argument("--gcov", default=os.environ.get("GCOV", "gcov"))
    args = ap.parse_args()

    source_root = args.source_root.resolve()
    line_counts, branch_counts = aggregate(args.build_dir.resolve(),
                                           source_root, args.gcov)
    mods = summarize(line_counts, branch_counts)
    floors = load_floors(args.floors)

    rows = []
    failures = []
    header = (f"{'module':<16} {'lines':>12} {'line%':>7} "
              f"{'branches':>12} {'branch%':>8}  floor")
    rows.append(header)
    rows.append("-" * len(header))
    for name in sorted(mods):
        m = mods[name]
        lp = pct(m["lines_hit"], m["lines_total"])
        bp = pct(m["br_taken"], m["br_total"])
        floor = floors.get(name)
        mark = ""
        if floor:
            line_floor, br_floor = floor
            mark = f"lines>={line_floor:.0f} branches>={br_floor:.0f}"
            if lp < line_floor:
                failures.append(
                    f"{name}: line coverage {lp:.1f}% < floor "
                    f"{line_floor:.1f}%")
            if bp < br_floor:
                failures.append(
                    f"{name}: branch coverage {bp:.1f}% < floor "
                    f"{br_floor:.1f}%")
        rows.append(
            f"{name:<16} {m['lines_hit']:>5}/{m['lines_total']:<6} "
            f"{lp:>6.1f} {m['br_taken']:>5}/{m['br_total']:<6} "
            f"{bp:>7.1f}  {mark}")
    report = "\n".join(rows) + "\n"
    if failures:
        report += "\nFAIL: coverage regressed below committed floors:\n"
        report += "".join(f"  {f}\n" for f in failures)
    else:
        report += "\nOK: all floored modules at or above their floors.\n"

    print(report, end="")
    out = args.output or args.build_dir / "coverage_report.txt"
    out.write_text(report)
    print(f"coverage: report written to {out}")
    sys.exit(1 if failures else 0)


if __name__ == "__main__":
    main()
