#!/usr/bin/env bash
# lcrs-analyzer gate: AST-level semantic invariant checks over every
# src/ and bench/ TU (lock coverage, wire-safety dataflow, kernel
# purity, metric catalogue). See scripts/analyzer/ and DESIGN.md
# "Static analysis".
#
# The analyzer parses `clang++ -Xclang -ast-dump=json` output, so it
# needs a clang on PATH (any clang++ >= 15; no libclang, no pip
# packages). Toolchains without one -- e.g. the gcc-only CI image --
# skip with exit 0 and a loud warning so the rest of check_all.sh still
# gates; the check semantics themselves stay pinned everywhere by the
# clang-free `analyzer_fixtures` ctest. Set LCRS_ANALYZER_STRICT=1 to
# fail instead of skipping (the CI analyzer job does). Override
# compiler discovery with CLANGXX=/path/to/clang++.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}

CXX_BIN=${CLANGXX:-}
if [[ -z "$CXX_BIN" ]]; then
  for cand in clang++ clang++-19 clang++-18 clang++-17 clang++-16 \
              clang++-15; do
    if command -v "$cand" > /dev/null 2>&1; then
      CXX_BIN=$cand
      break
    fi
  done
fi

if [[ -z "$CXX_BIN" ]]; then
  if [[ "${LCRS_ANALYZER_STRICT:-0}" == "1" ]]; then
    echo "check_analyzer: clang++ not found and LCRS_ANALYZER_STRICT=1" >&2
    exit 1
  fi
  echo "check_analyzer: WARNING: clang++ not installed; skipping the" \
       "AST invariant checks (set LCRS_ANALYZER_STRICT=1 to make this" \
       "an error). Check semantics remain covered by the" \
       "analyzer_fixtures ctest." >&2
  exit 0
fi

# The analyzer replays the real compile flags per TU, so it needs the
# compilation database (exported unconditionally by the top-level
# CMakeLists). Configure-only if this tree has not been built yet.
if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "check_analyzer: no $BUILD_DIR/compile_commands.json;" \
       "configuring..."
  cmake -B "$BUILD_DIR" -S . > /dev/null
fi

echo "check_analyzer: analyzing with $CXX_BIN"
python3 scripts/analyzer \
  --compile-commands "$BUILD_DIR/compile_commands.json" \
  --clang "$CXX_BIN" \
  --json "$BUILD_DIR/analyzer_report.json"

echo "check_analyzer: clean (report: $BUILD_DIR/analyzer_report.json)"
