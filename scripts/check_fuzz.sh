#!/usr/bin/env bash
# Short, bounded coverage-guided fuzz pass over every harness in fuzz/.
#
# Requires Clang (libFuzzer ships with it). Without Clang the script
# falls back to replaying the committed corpus through the standalone
# fuzz_*_replay runners (same harness code, no exploration) and warns;
# set LCRS_FUZZ_STRICT=1 to fail instead (CI does, on builders that
# guarantee Clang).
#
# Budget: LCRS_FUZZ_SECONDS per harness (default 20; CI uses up to 90).
# Any crash is a finding: libFuzzer leaves crash-* / the failing input in
# build-fuzz/artifacts/<harness>/. Minimize with
#   ./build-fuzz/fuzz/fuzz_<name> -minimize_crash=1 -runs=10000 <file>
# then commit it as fuzz/corpus/<name>/crasher-<what> and fix the bug in
# the same change.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc)}
SECONDS_PER_TARGET=${LCRS_FUZZ_SECONDS:-20}
STRICT=${LCRS_FUZZ_STRICT:-0}

HARNESSES=$(sed -n '/^set(LCRS_FUZZ_HARNESSES/,/^)/p' fuzz/CMakeLists.txt \
            | sed '1d;$d' | tr -d ' ')

if ! command -v clang++ >/dev/null 2>&1; then
  if [[ "$STRICT" == "1" ]]; then
    echo "check_fuzz: clang++ not found and LCRS_FUZZ_STRICT=1" >&2
    exit 1
  fi
  echo "check_fuzz: clang++ not found; falling back to corpus replay" \
       "(no coverage-guided exploration)" >&2
  cmake -B build -S . >/dev/null
  for name in $HARNESSES; do
    cmake --build build --target "fuzz_${name}_replay" -j"$JOBS" >/dev/null
  done
  (cd build && ctest -R '^fuzz_replay_' --output-on-failure -j"$JOBS")
  echo "check_fuzz: corpus replay clean (install clang for real fuzzing)"
  exit 0
fi

echo "check_fuzz: building libFuzzer harnesses (clang, ASan+UBSan)"
cmake -B build-fuzz -S . -DLCRS_FUZZ=ON \
      -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++ \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-fuzz -j"$JOBS" --target $(for n in $HARNESSES; do echo "fuzz_$n"; done)

fail=0
for name in $HARNESSES; do
  corpus="fuzz/corpus/$name"
  artifacts="build-fuzz/artifacts/$name"
  # libFuzzer writes newly-discovered inputs into the FIRST corpus dir;
  # keep the committed corpus read-only by growing a scratch copy.
  scratch="build-fuzz/corpus/$name"
  mkdir -p "$artifacts" "$scratch"
  echo "==== fuzzing $name for ${SECONDS_PER_TARGET}s"
  if ! "./build-fuzz/fuzz/fuzz_$name" \
        -max_total_time="$SECONDS_PER_TARGET" \
        -rss_limit_mb=4096 -timeout=30 \
        -artifact_prefix="$artifacts/" \
        -print_final_stats=1 \
        "$scratch" "$corpus"; then
    echo "check_fuzz: $name CRASHED -- minimize the input in $artifacts/," \
         "commit it as $corpus/crasher-*, and fix the bug" >&2
    fail=1
  fi
done

if [[ "$fail" != "0" ]]; then
  exit 1
fi
echo "check_fuzz: every harness clean for ${SECONDS_PER_TARGET}s."
