#!/usr/bin/env bash
# One-stop correctness gate. Runs, in order:
#   1. tier-1: full build with LCRS_WERROR=ON (expanded warning set as
#      errors) + the complete ctest battery (includes test_obs, the
#      observability suite, test_sync, the lock-order checker suite,
#      and analyzer_fixtures, the AST-check semantics suite)
#   2. invariant lint (scripts/lint_invariants.py). When a clang++ is
#      on PATH the three AST-superseded rules (wire-resize,
#      simd-intrinsics, metric-name) are delegated to the analyzer
#      gate below; without clang the regex fallbacks still run.
#   3. lcrs-analyzer AST invariant checks (lock coverage, wire-safety
#      dataflow, kernel purity, metric catalogue; skips with a warning
#      on non-Clang toolchains; LCRS_ANALYZER_STRICT=1 forces failure)
#   4. Clang -Wthread-safety analysis build (skips with a warning on
#      non-Clang toolchains; LCRS_TS_STRICT=1 forces failure)
#   5. clang-tidy over src/ (skips with a warning if not installed)
#   6. ThreadSanitizer suites (edge runtime + kernel thread pool + sync)
#   7. ASan over every suite
#   8. UBSan over every suite
#   9. bounded fuzz pass over every fuzz/ harness (corpus replay
#      fallback on non-Clang toolchains; LCRS_FUZZ_STRICT=1 forces
#      failure without Clang)
#  10. line+branch coverage with per-module floors
#      (scripts/coverage_floors.txt)
#  11. ops-plane smoke: boots `lcrs_tool serve` with the HTTP ops plane,
#      scrapes every endpoint over a real socket, and validates the
#      /metrics body with scripts/validate_prometheus.py
# Exits nonzero on the first failure. Fast, cheap gates run before the
# sanitizer rebuilds so style/lint mistakes fail in seconds, not minutes.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc)}

echo "==================== [1/11] tier-1 build (WERROR) + ctest"
cmake -B build -S . -DLCRS_WERROR=ON
cmake --build build -j"$JOBS"
(cd build && ctest --output-on-failure -j"$JOBS")

echo "==================== [2/11] invariant lint"
# With a clang on PATH the AST analyzer (gate 3) supersedes the three
# regex rules it reimplements semantically; keep the regex fallbacks
# when the analyzer is going to skip.
LINT_FLAGS=()
for cand in clang++ clang++-19 clang++-18 clang++-17 clang++-16 \
            clang++-15; do
  if command -v "$cand" > /dev/null 2>&1; then
    LINT_FLAGS+=(--delegate-ast-rules)
    break
  fi
done
python3 scripts/lint_invariants.py "${LINT_FLAGS[@]}"

echo "==================== [3/11] AST invariant checks (lcrs-analyzer)"
scripts/check_analyzer.sh

echo "==================== [4/11] thread-safety analysis (Clang)"
scripts/check_thread_safety.sh

echo "==================== [5/11] clang-tidy"
scripts/run_clang_tidy.sh

echo "==================== [6/11] TSan"
scripts/check_tsan.sh

echo "==================== [7/11] ASan"
scripts/check_sanitizers.sh asan

echo "==================== [8/11] UBSan"
scripts/check_sanitizers.sh ubsan

echo "==================== [9/11] fuzz (bounded libFuzzer / corpus replay)"
scripts/check_fuzz.sh

echo "==================== [10/11] coverage floors"
scripts/check_coverage.sh

echo "==================== [11/11] ops-plane smoke (CLI + exposition)"
scripts/check_ops_smoke.sh

echo "check_all: every gate clean."
