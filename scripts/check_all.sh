#!/usr/bin/env bash
# One-stop correctness gate. Runs, in order:
#   1. tier-1: full build with LCRS_WERROR=ON (expanded warning set as
#      errors) + the complete ctest battery (includes test_obs, the
#      observability suite: registry, spans, stitched traces)
#   2. invariant lint (scripts/lint_invariants.py)
#   3. clang-tidy over src/ (skips with a warning if not installed)
#   4. ThreadSanitizer suites (edge runtime + kernel thread pool)
#   5. ASan over every suite
#   6. UBSan over every suite
# Exits nonzero on the first failure. Fast, cheap gates run before the
# sanitizer rebuilds so style/lint mistakes fail in seconds, not minutes.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc)}

echo "==================== [1/6] tier-1 build (WERROR) + ctest"
cmake -B build -S . -DLCRS_WERROR=ON
cmake --build build -j"$JOBS"
(cd build && ctest --output-on-failure -j"$JOBS")

echo "==================== [2/6] invariant lint"
python3 scripts/lint_invariants.py

echo "==================== [3/6] clang-tidy"
scripts/run_clang_tidy.sh

echo "==================== [4/6] TSan"
scripts/check_tsan.sh

echo "==================== [5/6] ASan"
scripts/check_sanitizers.sh asan

echo "==================== [6/6] UBSan"
scripts/check_sanitizers.sh ubsan

echo "check_all: every gate clean."
