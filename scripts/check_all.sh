#!/usr/bin/env bash
# One-stop correctness gate. Runs, in order:
#   1. tier-1: full build with LCRS_WERROR=ON (expanded warning set as
#      errors) + the complete ctest battery (includes test_obs, the
#      observability suite, and test_sync, the lock-order checker suite)
#   2. invariant lint (scripts/lint_invariants.py)
#   3. Clang -Wthread-safety analysis build (skips with a warning on
#      non-Clang toolchains; LCRS_TS_STRICT=1 forces failure)
#   4. clang-tidy over src/ (skips with a warning if not installed)
#   5. ThreadSanitizer suites (edge runtime + kernel thread pool + sync)
#   6. ASan over every suite
#   7. UBSan over every suite
#   8. bounded fuzz pass over every fuzz/ harness (corpus replay
#      fallback on non-Clang toolchains; LCRS_FUZZ_STRICT=1 forces
#      failure without Clang)
#   9. line+branch coverage with per-module floors
#      (scripts/coverage_floors.txt)
#  10. ops-plane smoke: boots `lcrs_tool serve` with the HTTP ops plane,
#      scrapes every endpoint over a real socket, and validates the
#      /metrics body with scripts/validate_prometheus.py
# Exits nonzero on the first failure. Fast, cheap gates run before the
# sanitizer rebuilds so style/lint mistakes fail in seconds, not minutes.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc)}

echo "==================== [1/10] tier-1 build (WERROR) + ctest"
cmake -B build -S . -DLCRS_WERROR=ON
cmake --build build -j"$JOBS"
(cd build && ctest --output-on-failure -j"$JOBS")

echo "==================== [2/10] invariant lint"
python3 scripts/lint_invariants.py

echo "==================== [3/10] thread-safety analysis (Clang)"
scripts/check_thread_safety.sh

echo "==================== [4/10] clang-tidy"
scripts/run_clang_tidy.sh

echo "==================== [5/10] TSan"
scripts/check_tsan.sh

echo "==================== [6/10] ASan"
scripts/check_sanitizers.sh asan

echo "==================== [7/10] UBSan"
scripts/check_sanitizers.sh ubsan

echo "==================== [8/10] fuzz (bounded libFuzzer / corpus replay)"
scripts/check_fuzz.sh

echo "==================== [9/10] coverage floors"
scripts/check_coverage.sh

echo "==================== [10/10] ops-plane smoke (CLI + exposition)"
scripts/check_ops_smoke.sh

echo "check_all: every gate clean."
