#!/usr/bin/env bash
# Builds the concurrency-sensitive suites under ThreadSanitizer and runs
# them. Two subsystems are genuinely multi-threaded: the edge runtime
# (server/client threads, shutdown paths, fault injection) and the
# common/parallel.h thread pool that the gemm / conv / xnor kernels fan
# out on. The suite list covers every lock and atomic both paths use:
#   test_common     parallel_for semantics, exceptions across workers
#   test_gemm       blocked GEMM under a forced multi-worker pool
#   test_nn_layers  conv2d kernels through parallel_for
#   test_binary     xnor_gemm / binary conv kernels through parallel_for
#   test_edge       server/client lifecycle, shutdown, reconnect
#   test_edge_load  worker pool + batcher under N concurrent clients
#   test_model_swap registry hot-swap under 16 tagged clients
#   test_edge_soak  sustained mixed traffic, overload, reconnect churn
#   test_obs        concurrent metric updates and span emission
#   test_ops_plane  flight-recorder retention under the span tap
#   test_ops_http   ops HTTP plane scraped while 16 clients serve
#   test_sync       lcrs::Mutex/CondVar wrappers + lock-order checker
#                   under an 8-thread hammer
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build-tsan}
JOBS=${JOBS:-$(nproc)}

SUITES=(test_common test_gemm test_nn_layers test_binary test_edge
        test_edge_load test_model_swap test_edge_soak test_obs
        test_ops_plane test_ops_http test_sync)

cmake -B "$BUILD_DIR" -S . -DLCRS_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j"$JOBS" --target "${SUITES[@]}"

export TSAN_OPTIONS=${TSAN_OPTIONS:-halt_on_error=1}
for suite in "${SUITES[@]}"; do
  "$BUILD_DIR/tests/$suite"
done

echo "TSan: ${SUITES[*]} clean."
