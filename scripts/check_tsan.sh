#!/usr/bin/env bash
# Builds the concurrency-sensitive suites under ThreadSanitizer and runs
# them. The edge runtime (server/client threads, shutdown paths, fault
# injection) is the only multi-threaded subsystem, so building test_edge +
# test_common keeps the TSan cycle fast while covering every lock and
# atomic the serving path uses.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build-tsan}

cmake -B "$BUILD_DIR" -S . -DLCRS_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j"$(nproc)" --target test_edge test_common

export TSAN_OPTIONS=${TSAN_OPTIONS:-halt_on_error=1}
"$BUILD_DIR/tests/test_common"
"$BUILD_DIR/tests/test_edge"

echo "TSan: edge + common suites clean."
