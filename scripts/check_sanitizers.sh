#!/usr/bin/env bash
# Memory/UB gate: builds EVERY test suite under AddressSanitizer and/or
# UndefinedBehaviorSanitizer and runs the full ctest battery, including
# test_fuzz_parsers so the fuzz corpora (protocol frames, model blobs,
# webinfer models) actually catch out-of-bounds reads, not just thrown
# ParseErrors. The full battery includes the edge load/soak harnesses
# (test_edge_load, test_edge_soak), so the worker pool and batcher run
# under ASan/UBSan here, not just under TSan.
#
# Usage: check_sanitizers.sh [asan|ubsan|all]   (default: all)
set -euo pipefail

cd "$(dirname "$0")/.."
MODE=${1:-all}
JOBS=${JOBS:-$(nproc)}

run_one() {
  local name=$1 sanitize=$2 build_dir=$3
  echo "=== ${name}: building all suites (LCRS_SANITIZE=${sanitize}) ==="
  cmake -B "$build_dir" -S . -DLCRS_SANITIZE="$sanitize" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$build_dir" -j"$JOBS"
  echo "=== ${name}: running ctest ==="
  (cd "$build_dir" && ctest --output-on-failure -j"$JOBS")
  echo "=== ${name}: clean ==="
}

export ASAN_OPTIONS=${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1:strict_string_checks=1}
export UBSAN_OPTIONS=${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}

case "$MODE" in
  asan)  run_one ASan address "${BUILD_DIR:-build-asan}" ;;
  ubsan) run_one UBSan undefined "${BUILD_DIR:-build-ubsan}" ;;
  all)
    run_one ASan address build-asan
    run_one UBSan undefined build-ubsan
    ;;
  *) echo "usage: $0 [asan|ubsan|all]" >&2; exit 2 ;;
esac

echo "Sanitizers: all requested suites clean."
