#!/usr/bin/env python3
"""Strict validator for Prometheus text exposition format 0.0.4.

Reads an exposition body from a file (or stdin with `-`) and checks the
invariants the ops-plane /metrics endpoint promises:

  * every line is a `# TYPE <name> <counter|gauge|histogram>` comment or
    a `<name>[{labels}] <value>` sample (no stray text, no tabs);
  * metric and label names match the Prometheus grammar;
  * every sample's base name was declared by a preceding TYPE line, and
    no name is declared twice;
  * sample values parse as numbers (+Inf/-Inf/NaN allowed);
  * per histogram: at least one bucket, bucket `le` bounds strictly
    ascending, bucket counts non-decreasing (cumulative), a `+Inf`
    bucket present and exactly equal to `_count`, and `_sum`/`_count`
    both present;
  * label values are properly escaped (no raw newline can survive into
    a line, but a lone trailing backslash or unescaped quote fails).

Used by tests, scripts/check_ops_smoke.sh, and the CI ops-smoke job to
fail on unparseable exposition. Exit 0 when valid, 1 with one message
per violation otherwise.
"""

from __future__ import annotations

import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
TYPE_LINE = re.compile(r"^# TYPE ([^ ]+) (counter|gauge|histogram)$")
SAMPLE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$")
LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)  # raises ValueError on garbage; NaN parses


def base_name(name: str) -> str:
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


class Validator:
    def __init__(self) -> None:
        self.errors: list[str] = []
        self.types: dict[str, str] = {}
        # histogram base -> {"buckets": [(le, value)], "sum": v, "count": v}
        self.histograms: dict[str, dict] = {}

    def err(self, lineno: int, msg: str) -> None:
        self.errors.append(f"line {lineno}: {msg}")

    def feed(self, lineno: int, line: str) -> None:
        if line.startswith("# HELP "):
            return  # we do not emit HELP, but it is legal
        if line.startswith("#"):
            m = TYPE_LINE.match(line)
            if not m:
                self.err(lineno, f"malformed comment line: {line!r}")
                return
            name, kind = m.groups()
            if not METRIC_NAME.match(name):
                self.err(lineno, f"illegal metric name {name!r}")
            if name in self.types:
                self.err(lineno, f"duplicate TYPE declaration for {name}")
            self.types[name] = kind
            if kind == "histogram":
                self.histograms[name] = {
                    "buckets": [], "sum": None, "count": None}
            return

        m = SAMPLE.match(line)
        if not m:
            self.err(lineno, f"malformed sample line: {line!r}")
            return
        name, labels, value_text = m.groups()
        try:
            value = parse_value(value_text)
        except ValueError:
            self.err(lineno, f"unparseable value {value_text!r}")
            return

        base = base_name(name)
        kind = self.types.get(name) or self.types.get(base)
        if kind is None:
            self.err(lineno, f"sample {name} has no preceding TYPE line")
            return
        if kind != "histogram" and (labels or name != base or base != name):
            # counters/gauges in this exporter are label-free single lines
            if labels:
                self.err(lineno, f"unexpected labels on {kind} {name}")

        parsed_labels = {}
        if labels:
            inner = labels[1:-1]
            consumed = ""
            for lm in LABEL_PAIR.finditer(inner):
                parsed_labels[lm.group(1)] = lm.group(2)
                consumed += lm.group(0) + ","
            if inner and consumed.rstrip(",") != inner.rstrip(","):
                self.err(lineno, f"malformed label set {labels!r}")
            for lname, lvalue in parsed_labels.items():
                if not LABEL_NAME.match(lname):
                    self.err(lineno, f"illegal label name {lname!r}")
                if re.search(r"(?<!\\)(?:\\\\)*\"", lvalue):
                    self.err(lineno, f"unescaped quote in {lvalue!r}")

        if kind == "histogram":
            hist = self.histograms.setdefault(
                base, {"buckets": [], "sum": None, "count": None})
            if name == base + "_bucket":
                le = parsed_labels.get("le")
                if le is None:
                    self.err(lineno, f"{name} sample without an le label")
                    return
                try:
                    bound = parse_value(le)
                except ValueError:
                    self.err(lineno, f"unparseable le bound {le!r}")
                    return
                hist["buckets"].append((bound, value, lineno))
            elif name == base + "_sum":
                hist["sum"] = value
            elif name == base + "_count":
                hist["count"] = (value, lineno)
            else:
                self.err(lineno, f"unexpected histogram series {name}")

    def finish(self) -> None:
        for base, hist in self.histograms.items():
            buckets = hist["buckets"]
            if not buckets:
                self.errors.append(f"histogram {base}: no _bucket samples")
                continue
            prev_bound = float("-inf")
            prev_value = float("-inf")
            for bound, value, lineno in buckets:
                if not bound > prev_bound:
                    self.err(lineno,
                             f"{base}: le bounds not strictly ascending")
                if value < prev_value:
                    self.err(lineno,
                             f"{base}: bucket counts not cumulative")
                prev_bound, prev_value = bound, value
            inf_buckets = [v for b, v, _ in buckets if b == float("inf")]
            if not inf_buckets:
                self.errors.append(f"histogram {base}: no +Inf bucket")
            if hist["sum"] is None:
                self.errors.append(f"histogram {base}: missing _sum")
            if hist["count"] is None:
                self.errors.append(f"histogram {base}: missing _count")
            elif inf_buckets and hist["count"][0] != inf_buckets[-1]:
                self.errors.append(
                    f"histogram {base}: _count {hist['count'][0]} != "
                    f"+Inf bucket {inf_buckets[-1]}")


def main() -> int:
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} <exposition-file | ->", file=sys.stderr)
        return 2
    text = (sys.stdin.read() if sys.argv[1] == "-"
            else open(sys.argv[1], encoding="utf-8").read())

    v = Validator()
    samples = 0
    for lineno, line in enumerate(text.split("\n"), start=1):
        if line == "":
            continue
        if line != line.strip() or "\t" in line:
            v.err(lineno, f"stray whitespace: {line!r}")
            continue
        v.feed(lineno, line)
        if not line.startswith("#"):
            samples += 1
    v.finish()
    if samples == 0:
        v.errors.append("no samples found (empty exposition)")

    for e in v.errors:
        print(f"validate_prometheus: {e}", file=sys.stderr)
    if v.errors:
        print(f"validate_prometheus: INVALID ({len(v.errors)} error(s))",
              file=sys.stderr)
        return 1
    print(f"validate_prometheus: OK ({samples} samples, "
          f"{len(v.histograms)} histograms)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
