"""Text and JSON reports over a deduplicated finding set."""

from __future__ import annotations

import json
from pathlib import Path

from .findings import Finding
from .suppress import Suppression

REPORT_VERSION = 1


def dedupe(findings: list[Finding]) -> list[Finding]:
    """Same finding surfaced from several TUs (headers) reports once."""
    seen: dict[tuple, Finding] = {}
    for f in findings:
        seen.setdefault(f.key(), f)
    return sorted(seen.values(),
                  key=lambda f: (f.check, f.file, f.line, f.symbol))


def to_json(findings: list[Finding], tus: int,
            unused_suppressions: list[Suppression],
            errors: list[str]) -> dict:
    active = [f for f in findings if not f.suppressed]
    per_check: dict[str, int] = {}
    for f in active:
        per_check[f.check] = per_check.get(f.check, 0) + 1
    return {
        "version": REPORT_VERSION,
        "tus_analyzed": tus,
        "findings": [f.to_json() for f in findings],
        "summary": {
            "unsuppressed": len(active),
            "suppressed": sum(1 for f in findings if f.suppressed),
            "per_check": per_check,
            "tu_errors": len(errors),
        },
        "unused_suppressions": [
            {"key": s.key, "reason": s.reason, "line": s.line}
            for s in unused_suppressions
        ],
        "errors": errors,
    }


def write_json(path: Path, payload: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")


def print_text(findings: list[Finding], tus: int,
               unused_suppressions: list[Suppression],
               errors: list[str]) -> None:
    for f in findings:
        if f.suppressed:
            continue
        sym = f":{f.symbol}" if f.symbol else ""
        print(f"{f.file}:{f.line}: [{f.check}{sym}] {f.message}")
    n_sup = sum(1 for f in findings if f.suppressed)
    for s in unused_suppressions:
        print(f"suppressions.txt:{s.line}: note: entry `{s.key}` matched "
              "nothing in this run")
    for e in errors:
        print(f"lcrs-analyzer: TU error: {e}")
    active = len(findings) - n_sup
    print(f"lcrs-analyzer: {tus} TU(s), {active} finding(s), "
          f"{n_sup} suppressed, {len(unused_suppressions)} unused "
          f"suppression entr(ies), {len(errors)} TU error(s)")
