"""Suppression file: vetted exceptions with mandatory reasons.

Format (scripts/analyzer/suppressions.txt), one entry per line:

    check:file[:symbol]  # reason

`file` is repo-relative; `symbol` narrows to one field/function
(`EdgeServer::workers_`, `gemm_at`). The `# reason` is *required* --
an entry without one fails parsing, so an exception can never land
without its justification recorded next to it.

Unlike the regex linter's allowlist, unused entries are a warning, not
a failure: which findings a run produces depends on the clang version
and the configured feature set (a NEON-only kernel never appears in an
x86 dump), so a strict staleness gate would flap across toolchains.
The warning keeps rot visible; `--strict-suppressions` upgrades it for
repo-hygiene runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from .findings import Finding


class SuppressionError(ValueError):
    pass


@dataclass
class Suppression:
    key: str      # "check:file" or "check:file:symbol"
    reason: str
    line: int
    used: bool = False


def load(path: Path) -> list[Suppression]:
    if not path.exists():
        return []
    out: list[Suppression] = []
    for i, raw in enumerate(path.read_text().splitlines(), start=1):
        stripped = raw.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if "#" not in stripped:
            raise SuppressionError(
                f"{path}:{i}: suppression entry has no `# reason` -- every "
                "exception must record why it is safe")
        key, reason = stripped.split("#", 1)
        key, reason = key.strip(), reason.strip()
        if not reason:
            raise SuppressionError(f"{path}:{i}: empty reason")
        # check:file[:symbol] -- the symbol part may itself contain
        # colons (qualified names like BadCache::generation_).
        parts = key.split(":", 2)
        if len(parts) < 2 or not parts[0] or not parts[1]:
            raise SuppressionError(
                f"{path}:{i}: malformed key `{key}` "
                "(want check:file[:symbol])")
        out.append(Suppression(key=key, reason=reason, line=i))
    return out


def apply(findings: list[Finding],
          suppressions: list[Suppression]) -> None:
    """Marks findings matched by a suppression (in place), recording the
    reason and flagging the entries that matched."""
    by_key = {}
    for s in suppressions:
        by_key.setdefault(s.key, s)
    for f in findings:
        for key in f.suppression_keys():
            s = by_key.get(key)
            if s is not None:
                f.suppressed = True
                f.reason = s.reason
                s.used = True
                break


def unused(suppressions: list[Suppression]) -> list[Suppression]:
    return [s for s in suppressions if not s.used]
