"""Symbol/type index over a resolved TU.

One pass over the AST collects the two shapes every check consumes:

  * records: every complete class/struct definition in repo files, with
    its fields (name, qualified type, attribute kinds) -- lock-coverage
    runs entirely off this.
  * functions: every function/method/constructor *definition* in repo
    files, qualified with the syntactic record path where one exists,
    with the body node attached -- wire-safety and kernel-purity walk
    these bodies; metric-catalogue walks the whole TU (member
    initializers live outside function bodies).

Subtrees rooted outside the repo (system headers, third-party) are
skipped wholesale: location resolution already ran, so pruning here
cannot corrupt the incremental location state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .astjson import Node, has_attr, in_repo, node_file, node_line, qual_type

_FUNCTION_KINDS = {
    "FunctionDecl", "CXXMethodDecl", "CXXConstructorDecl",
    "CXXDestructorDecl", "CXXConversionDecl",
}

_GUARD_ATTRS = ("GuardedByAttr", "PtGuardedByAttr")


@dataclass
class FieldInfo:
    name: str
    qual_type: str
    guarded: bool
    line: int


@dataclass
class RecordInfo:
    name: str        # syntactic path, e.g. "EdgeServer::ResponseSlot"
    file: str
    line: int
    fields: list[FieldInfo] = field(default_factory=list)

    def owns_mutex(self, mutex_types: tuple[str, ...]) -> bool:
        return any(
            any(m in f.qual_type for m in mutex_types) for f in self.fields)


@dataclass
class FunctionInfo:
    name: str        # qualified with the syntactic record path
    file: str
    line: int
    node: Node
    body: Node


@dataclass
class TuIndex:
    rel_file: str
    root: Node
    records: list[RecordInfo] = field(default_factory=list)
    functions: list[FunctionInfo] = field(default_factory=list)


def build_index(rel_file: str, root: Node) -> TuIndex:
    idx = TuIndex(rel_file=rel_file, root=root)
    _collect(root, idx, record_path=[])
    return idx


def _collect(node, idx: TuIndex, record_path: list[str]) -> None:
    if isinstance(node, list):
        for item in node:
            _collect(item, idx, record_path)
        return
    if not isinstance(node, dict):
        return
    kind = node.get("kind")
    file = node_file(node)
    # Prune foreign subtrees at declaration granularity. The TU root and
    # containerish nodes (namespaces, linkage specs) are always entered;
    # a *declaration* whose own location is outside the repo is skipped
    # with its whole subtree.
    if kind and kind.endswith("Decl") and kind != "TranslationUnitDecl":
        if file and not in_repo(file):
            return

    if kind == "CXXRecordDecl" and node.get("completeDefinition") and \
            node.get("inner"):
        name = node.get("name") or "(anonymous)"
        path = record_path + [name]
        rec = RecordInfo(name="::".join(path), file=file,
                         line=node_line(node))
        for child in node.get("inner") or []:
            if not isinstance(child, dict):
                continue
            if child.get("kind") == "FieldDecl":
                rec.fields.append(FieldInfo(
                    name=child.get("name", "(anonymous)"),
                    qual_type=qual_type(child),
                    guarded=has_attr(child, *_GUARD_ATTRS),
                    line=node_line(child)))
        idx.records.append(rec)
        # Recurse for nested records and inline method bodies.
        _collect(node.get("inner"), idx, path)
        return

    if kind in _FUNCTION_KINDS:
        body = None
        for child in node.get("inner") or []:
            if isinstance(child, dict) and child.get("kind") == "CompoundStmt":
                body = child
                break
        if body is not None:
            name = node.get("name", "")
            if record_path:
                name = "::".join(record_path + [name])
            idx.functions.append(FunctionInfo(
                name=name, file=file, line=node_line(node),
                node=node, body=body))
        return  # function bodies are walked by checks, not re-indexed

    inner = node.get("inner")
    if inner:
        _collect(inner, idx, record_path)
