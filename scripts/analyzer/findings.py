"""Finding type shared by every check module."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Finding:
    check: str
    file: str       # repo-relative
    line: int
    symbol: str     # Class::field, function name, or "" when n/a
    message: str
    suppressed: bool = False
    reason: str = ""  # suppression reason when suppressed

    def key(self) -> tuple:
        """Dedup key: the same header indexed from many TUs must report
        once."""
        return (self.check, self.file, self.line, self.symbol)

    def suppression_keys(self) -> list[str]:
        keys = [f"{self.check}:{self.file}"]
        if self.symbol:
            keys.append(f"{self.check}:{self.file}:{self.symbol}")
        return keys

    def to_json(self) -> dict:
        d = {
            "check": self.check,
            "file": self.file,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
            "suppressed": self.suppressed,
        }
        if self.suppressed:
            d["reason"] = self.reason
        return d


@dataclass
class CheckConfig:
    """Repo-shape knobs shared by the checks; overridable in tests."""

    # lock-coverage -------------------------------------------------
    mutex_types: tuple[str, ...] = ("lcrs::Mutex", "Mutex")
    # Types that synchronize internally: a bare field of one of these in
    # a lock-owning class is not shared mutable state.
    internally_synced: tuple[str, ...] = (
        "CondVar", "Registry", "MirroredCounter", "MirroredGauge",
        "MirroredHistogram", "Counter", "Gauge", "Histogram",
        "std::atomic",
    )

    # wire-safety ---------------------------------------------------
    wire_reads: tuple[str, ...] = (
        "read_u32", "read_u64", "read_i64", "read_u16",
    )
    sized_containers: tuple[str, ...] = (
        "std::vector", "std::basic_string", "std::string", "std::deque",
    )

    # kernel-purity -------------------------------------------------
    kernel_file_prefixes: tuple[str, ...] = ("src/common/simd",)
    kernel_files: tuple[str, ...] = (
        "src/tensor/gemm.cpp",
        "src/binary/bitmatrix.cpp",
        "src/binary/xnor_gemm.cpp",
    )
    # Macro machinery whose expansion inside a kernel is sanctioned
    # (LCRS_CHECK / LCRS_ASSERT precondition checks).
    sanctioned_macro_files: tuple[str, ...] = ("common/error.h",)
    sanctioned_calls: tuple[str, ...] = ("throw_check_failure",)
    allocating_types: tuple[str, ...] = (
        "std::vector", "std::basic_string", "std::string", "std::deque",
        "std::map", "std::unordered_map", "Tensor", "BitMatrix",
    )
    allocating_members: tuple[str, ...] = (
        "resize", "reserve", "push_back", "emplace_back", "assign",
        "insert", "append",
    )
    allocator_calls: tuple[str, ...] = (
        "malloc", "calloc", "realloc", "free", "aligned_alloc",
        "posix_memalign", "operator new", "operator delete",
    )
    locking_members: tuple[str, ...] = (
        "lock", "unlock", "try_lock", "wait", "wait_for_us",
    )
    lock_types: tuple[str, ...] = ("MutexLock", "lcrs::MutexLock")

    # metric-catalogue ----------------------------------------------
    registration_members: tuple[str, ...] = ("counter", "gauge", "histogram")
    named_instrument_types: tuple[str, ...] = (
        "Span", "MirroredCounter", "MirroredGauge", "MirroredHistogram",
    )
    catalogue_exempt_files: tuple[str, ...] = (
        "src/common/obs/metric_names.h",
        "src/common/obs/metrics.h",
        "src/common/obs/metrics.cpp",
    )
    catalogue_scope: tuple[str, ...] = ("src/", "bench/")
