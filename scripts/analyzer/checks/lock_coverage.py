"""lock-coverage: every mutable field of a lock-owning class is guarded.

Clang's -Wthread-safety only analyzes accesses to fields someone
remembered to annotate: a field with *no* GUARDED_BY is simply invisible
to it. This check closes that hole structurally. For every class/struct
that owns an lcrs::Mutex, each non-static data member must be one of:

  * GUARDED_BY / PT_GUARDED_BY an actual mutex (so -Wthread-safety takes
    over enforcement from here),
  * std::atomic (lock-free shared state),
  * const (immutable after construction -- prefer this fix for
    set-in-ctor configuration over a suppression),
  * an internally-synchronized type (CondVar, the obs instruments, a
    nested Mutex itself), or
  * suppressed in scripts/analyzer/suppressions.txt with a reason
    (e.g. "joined only in stop() which is serialized by stop_mutex_").

The check is declaration-shaped, not access-shaped: it cannot prove a
bare field racy, only that nothing *prevents* a racy access from
compiling silently. That is exactly the "forgot to annotate" gap.
"""

from __future__ import annotations

from ..findings import CheckConfig, Finding
from ..index import TuIndex


def _exempt_type(qt: str, cfg: CheckConfig) -> bool:
    if qt.startswith("const "):
        return True
    for t in cfg.internally_synced:
        if t in qt:
            return True
    for t in cfg.mutex_types:
        if t in qt:
            return True  # the lock itself (annotation anchor)
    return False


def run(indexes: list[TuIndex], cfg: CheckConfig) -> list[Finding]:
    findings: list[Finding] = []
    for idx in indexes:
        for rec in idx.records:
            if not rec.owns_mutex(cfg.mutex_types):
                continue
            for f in rec.fields:
                if f.guarded or _exempt_type(f.qual_type, cfg):
                    continue
                findings.append(Finding(
                    check="lock-coverage",
                    file=rec.file,
                    line=f.line,
                    symbol=f"{rec.name}::{f.name}",
                    message=(
                        f"field `{f.name}` ({f.qual_type}) of lock-owning "
                        f"class {rec.name} is neither GUARDED_BY, atomic, "
                        "const, nor internally synchronized -- annotate it "
                        "or suppress with a reason"),
                ))
    return findings
