"""Check registry: name -> run(index, config) -> list[Finding]."""

from __future__ import annotations

from . import kernel_purity, lock_coverage, metric_catalogue, wire_safety

CHECKS = {
    "lock-coverage": lock_coverage.run,
    "wire-safety": wire_safety.run,
    "kernel-purity": kernel_purity.run,
    "metric-catalogue": metric_catalogue.run,
}
