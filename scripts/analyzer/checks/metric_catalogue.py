"""metric-catalogue: instrument and span names resolve to the catalogue.

Observability names live in exactly one place,
src/common/obs/metric_names.h, so a name cannot fork into two spellings
("edge.server.queue_depth" here, "edge.server.queue.depth" there) that
dashboards then miss. At every registration site --

  * Registry::counter/gauge/histogram member calls,
  * construction of a named instrument (obs::Span, MirroredCounter,
    MirroredGauge, MirroredHistogram)

-- the name argument must be a reference to a declared constant, not a
string literal. The check walks the *whole* TU rather than function
bodies: default member initializers (how EdgeServer binds its mirrored
instruments) live in class definitions, outside any body.

Unlike the regex `metric-name` rule this is call-shape-aware: it sees a
literal smuggled through std::string temporaries and implicit casts,
does not care about line breaks between the callee and its argument,
and extends to span names, which the regex rule never covered.
"""

from __future__ import annotations

from ..astjson import Node, call_args, callee_name, node_file, node_line, walk
from ..findings import CheckConfig, Finding
from ..index import TuIndex


def _literal_in(expr) -> Node | None:
    """A StringLiteral anywhere in the argument subtree (literals reach
    registration sites through std::string conversions and casts)."""
    if expr is None:
        return None
    for n in walk(expr):
        if n.get("kind") == "StringLiteral":
            return n
    return None


def _in_scope(file: str, cfg: CheckConfig) -> bool:
    if not file.startswith(cfg.catalogue_scope):
        return False
    return file not in cfg.catalogue_exempt_files


def _instrument_type(qt: str, cfg: CheckConfig) -> str | None:
    head = qt.removeprefix("const ").split("<", 1)[0]
    for t in cfg.named_instrument_types:
        if head == t or head.endswith("::" + t):
            return t
    return None


def run(indexes: list[TuIndex], cfg: CheckConfig) -> list[Finding]:
    findings: list[Finding] = []
    for idx in indexes:
        for node in walk(idx.root):
            file = node_file(node)
            if not file or not _in_scope(file, cfg):
                continue
            kind = node.get("kind")
            if kind == "CXXMemberCallExpr":
                name = callee_name(node)
                if name not in cfg.registration_members:
                    continue
                args = call_args(node)
                lit = _literal_in(args[0] if args else None)
                if lit is not None:
                    findings.append(Finding(
                        check="metric-catalogue",
                        file=file,
                        line=node_line(lit) or node_line(node),
                        symbol=name,
                        message=(
                            f"string literal passed to {name}() at an "
                            "instrument registration -- use a constant "
                            "from common/obs/metric_names.h"),
                    ))
            elif kind == "CXXConstructExpr":
                inst = _instrument_type(
                    (node.get("type") or {}).get("qualType", ""), cfg)
                if inst is None:
                    continue
                lit = _literal_in(node.get("inner"))
                if lit is not None:
                    findings.append(Finding(
                        check="metric-catalogue",
                        file=file,
                        line=node_line(lit) or node_line(node),
                        symbol=inst,
                        message=(
                            f"string literal names a {inst} -- use a "
                            "constant from common/obs/metric_names.h"),
                    ))
    return findings
