"""kernel-purity: SIMD dispatch/kernel code neither allocates, locks,
nor throws; raw intrinsics stay confined to the vetted files.

Two obligations:

  1. Purity of kernel functions. Every function defined in
     src/common/simd* or a vetted kernel file (tensor/gemm.cpp,
     binary/bitmatrix.cpp, binary/xnor_gemm.cpp) must not

       * allocate: operator new, malloc-family calls, growth member
         calls (resize/reserve/push_back/...), or local construction of
         an allocating type (std::vector, Tensor, BitMatrix, ...);
       * lock: lcrs::MutexLock construction or lock()/wait() member
         calls (kernels run under the caller's scheduling; a hidden
         lock turns a data-parallel inner loop into a convoy);
       * throw: a CXXThrowExpr (precondition failures go through
         LCRS_CHECK, whose expansion -- spelled in common/error.h and
         funneled through throw_check_failure -- is sanctioned).

     Entry points that allocate by design (output tensors, prepare-time
     panel packing, hoisted per-call scratch) are suppressed in
     scripts/analyzer/suppressions.txt with the reason recorded; the
     check's job is that a *new* allocation or lock cannot appear in a
     kernel silently.

  2. Intrinsic confinement, the AST-level successor of the regex
     `simd-intrinsics` rule: a call to an _mm*/__builtin_ia32_*/NEON
     vld1/vst1 intrinsic or a local of a vendor vector type (__m128...,
     float32x4_t) anywhere in src/ or bench/ *outside* the confined
     files means LCRS_SIMD=scalar no longer provably covers every
     vector path. Unlike the regex, this sees through macros and flags
     only code that actually compiles into the TU.
"""

from __future__ import annotations

import re

from ..astjson import (Node, callee_name, node_file, node_line, qual_type,
                       spelling_file, walk)
from ..findings import CheckConfig, Finding
from ..index import FunctionInfo, TuIndex

_INTRINSIC_CALL = re.compile(r"^(?:_mm(?:256|512)?_|__builtin_ia32_|"
                             r"vld[1-4]q?_|vst[1-4]q?_)")
_VECTOR_TYPE = re.compile(r"__m(?:128|256|512)[di]?\b|float32x[24]_t|"
                          r"int(?:8|16|32|64)x(?:2|4|8|16)_t")


def _kernel_file(rel: str, cfg: CheckConfig) -> bool:
    return rel.startswith(cfg.kernel_file_prefixes) or rel in cfg.kernel_files


def _sanctioned(node: Node, cfg: CheckConfig) -> bool:
    """Macro-expanded nodes spelled in the LCRS_CHECK machinery."""
    sp = node.get("_spelling_file")
    return bool(sp) and sp.endswith(cfg.sanctioned_macro_files)


def _purity_findings(fn: FunctionInfo, cfg: CheckConfig,
                     out: list[Finding]) -> None:
    def report(node: Node, what: str) -> None:
        out.append(Finding(
            check="kernel-purity",
            file=fn.file,
            line=node_line(node) or fn.line,
            symbol=fn.name,
            message=(f"kernel function {fn.name}() {what} -- kernels must "
                     "be allocation-, lock-, and throw-free (suppress "
                     "prepare-time entry points with a reason)"),
        ))

    # Walk the whole definition (constructor initializers included).
    for node in walk(fn.node):
        if _sanctioned(node, cfg):
            continue
        kind = node.get("kind")
        if kind == "CXXNewExpr":
            report(node, "allocates with operator new")
        elif kind == "CXXThrowExpr":
            report(node, "throws directly (use LCRS_CHECK)")
        elif kind == "CallExpr":
            name = callee_name(node)
            if name in cfg.allocator_calls:
                report(node, f"calls allocator `{name}`")
        elif kind == "CXXMemberCallExpr":
            name = callee_name(node)
            if name in cfg.allocating_members:
                report(node, f"grows a container via .{name}()")
            elif name in cfg.locking_members:
                report(node, f"synchronizes via .{name}()")
        elif kind == "VarDecl":
            qt = qual_type(node)
            if any(t in qt for t in cfg.lock_types):
                report(node, "takes a lock (MutexLock)")
            elif node.get("init") and _allocating_type(qt, cfg):
                report(node, f"constructs allocating local `{qt}`")
        elif kind == "CXXConstructExpr" and node.get("_ctor_init"):
            # Constructor member initializers of allocating types.
            qt = qual_type(node)
            if _allocating_type(qt, cfg) and node.get("inner"):
                report(node, f"allocates member of type `{qt}`")


def _allocating_type(qt: str, cfg: CheckConfig) -> bool:
    base = qt.removeprefix("const ")
    if base.endswith(("&", "*")):
        return False
    return any(base.startswith(t) or base.startswith("lcrs::" + t) or
               ("::" + t) in base.split("<", 1)[0]
               for t in cfg.allocating_types)


def _confinement_findings(idx: TuIndex, cfg: CheckConfig,
                          out: list[Finding]) -> None:
    for fn in idx.functions:
        if _kernel_file(fn.file, cfg):
            continue
        if not fn.file.startswith(("src/", "bench/")):
            continue
        for node in walk(fn.node):
            kind = node.get("kind")
            if kind in ("CallExpr", "CXXMemberCallExpr"):
                name = callee_name(node)
                if name and _INTRINSIC_CALL.match(name):
                    out.append(Finding(
                        check="kernel-purity",
                        file=fn.file,
                        line=node_line(node) or fn.line,
                        symbol=fn.name,
                        message=(
                            f"raw intrinsic `{name}` outside the SIMD "
                            "dispatch layer -- add a dispatched kernel "
                            "under src/common/simd* or a vetted kernel "
                            "file instead"),
                    ))
            elif kind == "VarDecl" and _VECTOR_TYPE.search(qual_type(node)):
                out.append(Finding(
                    check="kernel-purity",
                    file=fn.file,
                    line=node_line(node) or fn.line,
                    symbol=fn.name,
                    message=(
                        f"vendor vector type `{qual_type(node)}` outside "
                        "the SIMD dispatch layer -- use the dispatched "
                        "wrappers so LCRS_SIMD=scalar covers this path"),
                ))


def _mark_ctor_inits(fn: FunctionInfo) -> None:
    """Tags the direct CXXConstructExpr children of constructor member
    initializers so allocation there is attributed (the body walk cannot
    otherwise tell an initializer from an argument temporary)."""
    if fn.node.get("kind") != "CXXConstructorDecl":
        return
    for child in fn.node.get("inner") or []:
        if isinstance(child, dict) and \
                child.get("kind") == "CXXCtorInitializer":
            for sub in walk(child):
                if sub.get("kind") == "CXXConstructExpr":
                    sub["_ctor_init"] = True


def run(indexes: list[TuIndex], cfg: CheckConfig) -> list[Finding]:
    findings: list[Finding] = []
    for idx in indexes:
        for fn in idx.functions:
            if _kernel_file(fn.file, cfg):
                _mark_ctor_inits(fn)
                _purity_findings(fn, cfg, findings)
        _confinement_findings(idx, cfg, findings)
    return findings
