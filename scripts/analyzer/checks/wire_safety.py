"""wire-safety: wire-derived sizes are bounds-checked before they size
anything.

Tracks, per function body, every local initialized (or assigned) from a
ByteReader length read (read_u32/u64/i64/u16) plus locals derived from
one, and requires a bound check *between the read and the first use* as:

  * a resize/reserve argument,
  * a sized container construction (std::vector<T> v(n)),
  * an operator-new array size, or
  * a for/while loop bound.

A "bound check" is any if-condition (or conditional-operator condition)
that mentions the tainted value -- which is exactly what both idioms in
this tree expand to: a hand-written `if (size > r.remaining()) throw
ParseError(...)` and the `if (!(cond)) ...` that LCRS_CHECK produces.

The analysis is flow-insensitive by order: events are taken in document
order within one body, which matches the straight-line shape of every
parser in this repo (early-throw guards, no backward jumps). It is
intra-procedural by design; a length that crosses a function boundary
re-enters the rule at the callee's own reads. This supersedes the regex
`wire-resize` rule, which could only see ~2000 characters past the read
and matched guards by spelling.
"""

from __future__ import annotations

from ..astjson import (Node, call_args, callee_name, node_line,
                       referenced_decl_id, strip_sugar, walk)
from ..findings import CheckConfig, Finding
from ..index import FunctionInfo, TuIndex

_GUARD_STMTS = ("IfStmt", "ConditionalOperator")
_LOOP_STMTS = ("ForStmt", "WhileStmt", "DoStmt")


def _is_wire_read(expr: Node | None, cfg: CheckConfig) -> bool:
    """Does this expression subtree contain a ByteReader length read?"""
    if expr is None:
        return False
    for n in walk(expr):
        if n.get("kind") == "CXXMemberCallExpr" and \
                callee_name(n) in cfg.wire_reads:
            return True
    return False


def _refs(expr, ids: set[str]) -> str | None:
    """First tainted decl id referenced in the subtree, else None."""
    if expr is None:
        return None
    for n in walk(expr):
        if n.get("kind") == "DeclRefExpr":
            did = referenced_decl_id(n)
            if did in ids:
                return did
    return None


def _condition_children(node: Node) -> list[Node]:
    """Children of a control statement that form its condition: all
    inner children except the trailing statement(s). For IfStmt that is
    everything before the then/else; for loops everything before the
    body. Clang emits empty dicts for absent for-parts; they walk to
    nothing."""
    inner = [c for c in node.get("inner") or [] if isinstance(c, dict)]
    if not inner:
        return []
    kind = node.get("kind")
    if kind == "IfStmt":
        # [init?, condVar?, cond, then, else?] -- drop trailing stmts.
        n_stmts = 2 if node.get("hasElse") else 1
        return inner[:-n_stmts] if len(inner) > n_stmts else inner[:1]
    if kind == "ConditionalOperator":
        return inner[:1]
    if kind in ("ForStmt", "WhileStmt"):
        return inner[:-1]
    if kind == "DoStmt":
        return inner[1:]
    return []


class _BodyScan:
    def __init__(self, fn: FunctionInfo, cfg: CheckConfig,
                 findings: list[Finding]) -> None:
        self.fn = fn
        self.cfg = cfg
        self.findings = findings
        self.tainted: dict[str, str] = {}   # decl id -> variable name
        self.guarded: set[str] = set()

    # -- event handlers, invoked in document order --

    def _taint(self, decl_id: str | None, name: str) -> None:
        if decl_id:
            self.tainted[decl_id] = name

    def _unguarded_ref(self, expr) -> str | None:
        did = _refs(expr, set(self.tainted) - self.guarded)
        return did

    def _report(self, node: Node, did: str, how: str) -> None:
        name = self.tainted.get(did, "?")
        self.findings.append(Finding(
            check="wire-safety",
            file=self.fn.file,
            line=node_line(node),
            symbol=name,
            message=(
                f"wire-derived `{name}` {how} in {self.fn.name}() with no "
                "bound check between the read and this use -- compare it "
                "against remaining()/a format cap first"),
        ))
        # One report per variable per body: the first unguarded use is
        # the actionable one, later uses are downstream of the same fix.
        self.guarded.add(did)

    def visit(self, node) -> None:
        if isinstance(node, list):
            for item in node:
                self.visit(item)
            return
        if not isinstance(node, dict):
            return
        kind = node.get("kind")

        if kind == "VarDecl":
            if node.get("init") and _is_wire_read(node, self.cfg):
                self._taint(node.get("id"), node.get("name", "?"))
                return  # the read itself is not a use
            qt = (node.get("type") or {}).get("qualType", "")
            if any(qt.startswith(t) or qt.startswith("const " + t)
                   for t in self.cfg.sized_containers):
                # A sized container constructed from a tainted length.
                did = self._unguarded_ref(node.get("inner"))
                if did is not None:
                    self._report(node, did, "sizes a container construction")
                self.visit(node.get("inner") or [])
                return
            # Derived scalar: taint propagates through initialization.
            src = _refs(node.get("inner"), set(self.tainted))
            if src is not None and node.get("init"):
                self._taint(node.get("id"), node.get("name", "?"))
            self.visit(node.get("inner") or [])
            return

        if kind == "BinaryOperator" and node.get("opcode") == "=":
            inner = [c for c in node.get("inner") or []
                     if isinstance(c, dict)]
            if len(inner) == 2 and _is_wire_read(inner[1], self.cfg):
                lhs = strip_sugar(inner[0])
                if isinstance(lhs, dict) and lhs.get("kind") == "DeclRefExpr":
                    self._taint(referenced_decl_id(lhs),
                                lhs.get("referencedDecl", {}).get("name", "?"))
                    return

        if kind in _GUARD_STMTS or kind in _LOOP_STMTS:
            cond = _condition_children(node)
            if kind in _GUARD_STMTS:
                did = _refs(cond, set(self.tainted))
                if did is not None:
                    self.guarded.add(did)
            else:
                did = self._unguarded_ref(cond)
                if did is not None:
                    self._report(node, did, "bounds a loop")
            # Visit condition (nested reads/uses), then the statements.
            for c in (c for c in node.get("inner") or []
                      if isinstance(c, dict)):
                self.visit(c)
            return

        if kind == "CXXMemberCallExpr" and \
                callee_name(node) in ("resize", "reserve"):
            did = self._unguarded_ref(call_args(node))
            if did is not None:
                self._report(node, did, f"sizes a {callee_name(node)}()")

        if kind == "CXXNewExpr":
            did = self._unguarded_ref(node.get("inner"))
            if did is not None:
                self._report(node, did, "sizes an operator new")

        if kind == "CXXConstructExpr":
            qt = (node.get("type") or {}).get("qualType", "")
            if any(t in qt for t in self.cfg.sized_containers) and \
                    node.get("inner"):
                did = self._unguarded_ref(node.get("inner"))
                if did is not None:
                    self._report(node, did, "sizes a container construction")

        self.visit(node.get("inner") or [])


def run(indexes: list[TuIndex], cfg: CheckConfig) -> list[Finding]:
    findings: list[Finding] = []
    for idx in indexes:
        for fn in idx.functions:
            scan = _BodyScan(fn, cfg, findings)
            scan.visit(fn.body)
    return findings
