"""lcrs-analyzer command line.

Two input modes:

  * --compile-commands build/compile_commands.json  (the real gate):
    every src/ and bench/ TU is dumped with clang and analyzed. Clang
    is required in this mode; scripts/check_analyzer.sh handles the
    no-clang skip *before* invoking this, so the CLI itself can be
    strict about toolchain problems.
  * --ast file.json ...  (fixtures/tests): pre-dumped AST JSON files
    are analyzed directly, no clang needed. This is how the ctest
    fixture suite pins check semantics on gcc-only machines.

Exit codes: 0 clean, 1 unsuppressed findings (or TU errors), 2 usage /
environment errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from . import astjson, compiledb, report, suppress
from .checks import CHECKS
from .findings import CheckConfig
from .index import build_index

REPO = Path(__file__).resolve().parent.parent.parent
DEFAULT_SUPPRESSIONS = Path(__file__).resolve().parent / "suppressions.txt"


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(
        prog="lcrs-analyzer",
        description="AST-level semantic invariant checker for the LCRS "
                    "tree (lock coverage, wire-safety dataflow, kernel "
                    "purity, metric catalogue).")
    p.add_argument("--compile-commands", type=Path,
                   help="compilation database to drive clang AST dumps")
    p.add_argument("--ast", type=Path, nargs="*", default=[],
                   help="pre-dumped AST JSON file(s) to analyze directly")
    p.add_argument("--clang", help="clang++ binary (default: discover)")
    p.add_argument("--checks", default=",".join(CHECKS),
                   help="comma-separated subset of checks to run")
    p.add_argument("--suppressions", type=Path,
                   default=DEFAULT_SUPPRESSIONS,
                   help="suppression file (check:file[:symbol]  # reason)")
    p.add_argument("--no-suppressions", action="store_true",
                   help="ignore the suppression file (fixture runs)")
    p.add_argument("--json", type=Path,
                   help="write the JSON report here as well")
    p.add_argument("--strict-suppressions", action="store_true",
                   help="treat unused suppression entries as findings")
    p.add_argument("--repo-root", type=Path, default=REPO,
                   help="repository root for path normalization")
    args = p.parse_args(argv)

    sys.setrecursionlimit(1_000_000)
    astjson.set_repo_root(args.repo_root)

    check_names = [c.strip() for c in args.checks.split(",") if c.strip()]
    unknown = [c for c in check_names if c not in CHECKS]
    if unknown:
        print(f"lcrs-analyzer: unknown check(s): {', '.join(unknown)} "
              f"(have: {', '.join(CHECKS)})", file=sys.stderr)
        return 2
    if not args.compile_commands and not args.ast:
        print("lcrs-analyzer: need --compile-commands or --ast",
              file=sys.stderr)
        return 2

    # ---- gather TUs and analyze one at a time -----------------------
    # A decoded dump of a real TU runs to hundreds of MB of dicts, so
    # each TU is indexed, checked, and released before the next dump.
    cfg = CheckConfig()
    findings = []
    errors: list[str] = []
    tus_analyzed = 0

    def analyze(rel_name: str, root) -> None:
        nonlocal tus_analyzed
        idx = build_index(rel_name, root)
        for name in check_names:
            findings.extend(CHECKS[name]([idx], cfg))
        tus_analyzed += 1

    for ast_path in args.ast:
        try:
            analyze(ast_path.name, astjson.load_ast_file(ast_path))
        except astjson.AstError as e:
            errors.append(str(e))

    if args.compile_commands:
        clang = compiledb.find_clang(args.clang)
        if clang is None:
            print("lcrs-analyzer: no clang++ found (install clang or pass "
                  "--clang); scripts/check_analyzer.sh skips gracefully "
                  "when clang is absent", file=sys.stderr)
            return 2
        try:
            db = compiledb.load(args.compile_commands)
        except RuntimeError as e:
            print(f"lcrs-analyzer: {e}", file=sys.stderr)
            return 2
        tus = compiledb.select_tus(db, args.repo_root.resolve())
        if not tus:
            print("lcrs-analyzer: no src/ or bench/ TUs in "
                  f"{args.compile_commands}", file=sys.stderr)
            return 2
        for entry in tus:
            tu_args = compiledb.adapt_args(entry)
            try:
                root = astjson.dump_tu(clang, tu_args,
                                       entry.get("directory", "."))
            except astjson.AstError as e:
                errors.append(str(e))
                continue
            analyze(entry["rel_file"], root)
            print(f"lcrs-analyzer: analyzed {entry['rel_file']}",
                  file=sys.stderr)

    findings = report.dedupe(findings)

    # ---- suppressions ----------------------------------------------
    try:
        sup = ([] if args.no_suppressions
               else suppress.load(args.suppressions))
    except suppress.SuppressionError as e:
        print(f"lcrs-analyzer: {e}", file=sys.stderr)
        return 2
    suppress.apply(findings, sup)
    unused = suppress.unused(sup)

    payload = report.to_json(findings, tus_analyzed, unused, errors)
    if args.json:
        report.write_json(args.json, payload)
    report.print_text(findings, tus_analyzed, unused, errors)

    clean = payload["summary"]["unsuppressed"] == 0 and not errors
    if args.strict_suppressions and unused:
        clean = False
    return 0 if clean else 1


if __name__ == "__main__":
    sys.exit(main())
