"""Makes `python3 scripts/analyzer` work without installing anything.

When executed as a directory, Python puts scripts/analyzer itself on
sys.path, which breaks the package-relative imports; re-anchor on the
parent (scripts/) and import the package properly.
"""

import sys
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from analyzer.cli import main
else:
    from .cli import main

sys.exit(main())
