"""Clang JSON AST loading and source-location resolution.

The analyzer consumes `clang++ -Xclang -ast-dump=json -fsyntax-only`
output -- plain JSON, no libclang link dependency, so any clang >= 12 on
PATH works. Two schema quirks matter:

  * Locations are *incremental*: a `loc`/`range` dict omits `file` (and
    `line`) when unchanged since the previously printed location, so the
    dump must be walked in document order with a running (file, line)
    state. `resolve_locations` does that once per TU and annotates every
    node dict in place with `_file` / `_line` (and, for macro-expanded
    nodes, `_spelling_file`), after which checks are free to visit nodes
    in any order.

  * Macro expansions replace the flat location fields with nested
    `spellingLoc` (where the token text lives -- e.g. common/error.h for
    code produced by LCRS_CHECK) and `expansionLoc` (the use site). The
    analyzer positions findings at the expansion site and uses the
    spelling file to recognize sanctioned macro machinery.

Node dicts are used directly (no wrapper class): a TU dump of a real TU
in this repo runs to hundreds of MB of JSON, and attribute access on
plain dicts is the cheapest traversal Python offers.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path
from typing import Any, Iterator

Node = dict  # alias for readability; clang AST nodes are plain dicts


class AstError(RuntimeError):
    """Raised when a TU cannot be dumped or parsed."""


# ---------------------------------------------------------------------
# Location resolution


class _LocState:
    __slots__ = ("file", "line")

    def __init__(self) -> None:
        self.file: str | None = None
        self.line: int | None = None


def _resolve_loc_dict(d: dict, st: _LocState) -> tuple[str | None, int | None]:
    """Resolves one flat loc dict against the running state (updating it).

    An empty dict is clang's spelling of "invalid location": it neither
    carries nor changes state.
    """
    if not d:
        return None, None
    if "file" in d:
        st.file = d["file"]
    if "line" in d:
        st.line = d["line"]
    # A loc with only col/tokLen inherits both file and line.
    return st.file, st.line


def _visit_loc(d: dict | None, st: _LocState) -> tuple[
        str | None, int | None, str | None]:
    """Resolves a loc that may be a macro loc. Returns (file, line,
    spelling_file); file/line are the expansion (use) site."""
    if not d:
        return None, None, None
    if "spellingLoc" in d or "expansionLoc" in d:
        sfile, _ = _resolve_loc_dict(d.get("spellingLoc") or {}, st)
        efile, eline = _resolve_loc_dict(d.get("expansionLoc") or {}, st)
        return efile, eline, sfile
    f, l = _resolve_loc_dict(d, st)
    return f, l, None


def resolve_locations(root: Node) -> None:
    """Walks the TU in document order, annotating every node that carries
    a `loc` or `range` with resolved `_file`/`_line` (expansion site) and
    `_spelling_file` when the node comes out of a macro body.

    Nodes with no location info of their own inherit the enclosing
    node's resolved position, so checks can always ask "what file is
    this in" without re-walking.
    """
    st = _LocState()

    def visit(node: Any, inherited_file: str | None,
              inherited_line: int | None) -> None:
        if isinstance(node, list):
            for item in node:
                visit(item, inherited_file, inherited_line)
            return
        if not isinstance(node, dict):
            return
        file: str | None = None
        line: int | None = None
        spelling: str | None = None
        if "loc" in node:
            file, line, spelling = _visit_loc(node["loc"], st)
        rng = node.get("range")
        if isinstance(rng, dict):
            bf, bl, bs = _visit_loc(rng.get("begin"), st)
            if file is None:
                file, line, spelling = bf, bl, bs
            _visit_loc(rng.get("end"), st)
        node["_file"] = file if file is not None else inherited_file
        node["_line"] = line if line is not None else inherited_line
        if spelling is not None:
            node["_spelling_file"] = spelling
        inner = node.get("inner")
        if inner:
            visit(inner, node["_file"], node["_line"])

    visit(root, None, None)


# ---------------------------------------------------------------------
# Traversal helpers (used by every check)


_REPO_ROOT: str | None = None


def set_repo_root(root: Path) -> None:
    """Registers the repo root so node_file() can return repo-relative
    paths for in-repo locations (real dumps print absolute paths;
    committed fixture dumps already use relative ones)."""
    global _REPO_ROOT
    _REPO_ROOT = str(Path(root).resolve()) + "/"


def _normalize(file: str) -> str:
    if file and _REPO_ROOT and file.startswith(_REPO_ROOT):
        return file[len(_REPO_ROOT):]
    return file


def in_repo(file: str) -> bool:
    """After normalization, in-repo paths are relative; anything still
    absolute (system headers, third-party) is foreign."""
    return bool(file) and not file.startswith("/")


def walk(node: Any) -> Iterator[Node]:
    """Yields `node` and every descendant dict, in document order."""
    stack = [node]
    while stack:
        cur = stack.pop()
        if isinstance(cur, list):
            stack.extend(reversed(cur))
            continue
        if not isinstance(cur, dict):
            continue
        yield cur
        inner = cur.get("inner")
        if inner:
            stack.append(inner)


def node_file(node: Node) -> str:
    return _normalize(node.get("_file") or "")


def node_line(node: Node) -> int:
    return node.get("_line") or 0


def spelling_file(node: Node) -> str:
    """File the node's tokens are spelled in: the macro-definition header
    for macro-expanded nodes, the node's own file otherwise."""
    return _normalize(node.get("_spelling_file") or "") or node_file(node)


def qual_type(node: Node) -> str:
    t = node.get("type")
    if isinstance(t, dict):
        return t.get("qualType", "")
    return ""


def strip_sugar(expr: Node | None) -> Node | None:
    """Peels implicit casts / temporaries off an expression node."""
    sugar = {
        "ImplicitCastExpr", "MaterializeTemporaryExpr",
        "CXXBindTemporaryExpr", "ExprWithCleanups", "ConstantExpr",
        "ParenExpr", "CXXFunctionalCastExpr",
    }
    while isinstance(expr, dict) and expr.get("kind") in sugar:
        inner = expr.get("inner") or []
        expr = inner[0] if inner else None
    return expr


def callee_name(call: Node) -> str:
    """Best-effort name of the function a CallExpr/CXXMemberCallExpr
    invokes. Handles DeclRefExpr, MemberExpr, and unresolved lookups."""
    inner = call.get("inner") or []
    if not inner:
        return ""
    callee = strip_sugar(inner[0])
    if not isinstance(callee, dict):
        return ""
    kind = callee.get("kind")
    if kind == "MemberExpr":
        # clang prints MemberExpr names as ".foo" / "->foo".
        name = callee.get("name", "")
        return name.lstrip(".->") if name else _referenced_name(callee)
    if kind == "DeclRefExpr":
        return _referenced_name(callee)
    if kind in ("UnresolvedLookupExpr", "DependentScopeDeclRefExpr"):
        return callee.get("name", "")
    return ""


def _referenced_name(ref: Node) -> str:
    d = ref.get("referencedDecl") or ref.get("referencedMemberDecl")
    if isinstance(d, dict):
        return d.get("name", "")
    return ""


def referenced_decl_id(ref: Node) -> str | None:
    """Decl id a DeclRefExpr resolves to (for dataflow by identity)."""
    d = ref.get("referencedDecl")
    if isinstance(d, dict):
        return d.get("id")
    return None


def call_args(call: Node) -> list[Node]:
    """Argument expressions of a call (skipping the callee for plain
    calls and the object expression for member calls)."""
    inner = call.get("inner") or []
    return inner[1:] if inner else []


def has_attr(decl: Node, *attr_kinds: str) -> bool:
    for child in decl.get("inner") or []:
        if isinstance(child, dict) and child.get("kind") in attr_kinds:
            return True
    return False


# ---------------------------------------------------------------------
# Producing / loading dumps


def load_ast_file(path: Path) -> Node:
    try:
        with open(path, "r") as f:
            root = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise AstError(f"cannot load AST dump {path}: {e}") from e
    resolve_locations(root)
    return root


def dump_tu(clang: str, args: list[str], directory: str) -> Node:
    """Runs clang on one compile_commands entry, returning the resolved
    AST. `args` is the adapted flag list (see compiledb.adapt_args)."""
    cmd = [clang, *args]
    try:
        proc = subprocess.run(cmd, cwd=directory, capture_output=True,
                              text=True, check=False)
    except OSError as e:
        raise AstError(f"failed to run {clang}: {e}") from e
    if proc.returncode != 0:
        tail = "\n".join(proc.stderr.splitlines()[-8:])
        raise AstError(
            f"clang AST dump failed (exit {proc.returncode}) for "
            f"{args[-1] if args else '?'}:\n{tail}")
    try:
        root = json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        raise AstError(f"unparseable AST JSON from {clang}: {e}") from e
    resolve_locations(root)
    return root
