"""compile_commands.json handling: TU selection and clang invocation.

The analyzer never re-derives compile flags: the top-level CMakeLists
exports compile_commands.json unconditionally, and each entry's flags
are adapted (strip -c/-o, append the AST-dump request) so the dump sees
exactly the include paths and defines the real build uses. Clang is
located with the same candidate ladder as scripts/check_thread_safety.sh
so one toolchain discovery story covers every clang-based gate.
"""

from __future__ import annotations

import json
import shlex
import shutil
from pathlib import Path

CLANG_CANDIDATES = (
    "clang++", "clang++-19", "clang++-18", "clang++-17", "clang++-16",
    "clang++-15",
)

# Flags that make no sense for a syntax-only AST dump (or that drag in
# outputs). `-o` consumes its argument.
_DROP_WITH_ARG = {"-o", "-MF", "-MT", "-MQ"}
_DROP = {"-c", "-MD", "-MMD", "-MP"}

AST_DUMP_FLAGS = [
    "-fsyntax-only",
    "-Wno-everything",        # diagnostics are other gates' business
    "-Wno-unknown-warning-option",
    "-Xclang", "-ast-dump=json",
]


def find_clang(explicit: str | None = None) -> str | None:
    if explicit:
        return explicit if shutil.which(explicit) else None
    for cand in CLANG_CANDIDATES:
        if shutil.which(cand):
            return cand
    return None


def load(path: Path) -> list[dict]:
    try:
        with open(path, "r") as f:
            db = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise RuntimeError(f"cannot load {path}: {e}") from e
    if not isinstance(db, list):
        raise RuntimeError(f"{path} is not a compilation database")
    return db


def select_tus(db: list[dict], repo: Path,
               roots: tuple[str, ...] = ("src/", "bench/")) -> list[dict]:
    """Entries whose source lives under the given repo-relative roots,
    deduplicated by source file (multi-config databases repeat TUs)."""
    seen: set[str] = set()
    out: list[dict] = []
    for entry in db:
        f = entry.get("file", "")
        try:
            rel = Path(f).resolve().relative_to(repo).as_posix()
        except ValueError:
            continue
        if not rel.startswith(roots) or rel in seen:
            continue
        seen.add(rel)
        entry = dict(entry)
        entry["rel_file"] = rel
        out.append(entry)
    return sorted(out, key=lambda e: e["rel_file"])


def adapt_args(entry: dict) -> list[str]:
    """Turns one database entry's command into clang AST-dump arguments
    (compiler argv[0] removed -- the caller picks the clang binary)."""
    if "arguments" in entry:
        argv = list(entry["arguments"])
    else:
        argv = shlex.split(entry.get("command", ""))
    out: list[str] = []
    skip = False
    for arg in argv[1:]:  # drop the compiler itself
        if skip:
            skip = False
            continue
        if arg in _DROP_WITH_ARG:
            skip = True
            continue
        if arg in _DROP:
            continue
        out.append(arg)
    out.extend(AST_DUMP_FLAGS)
    return out
