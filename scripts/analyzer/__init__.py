"""lcrs-analyzer: AST-level semantic invariant checker.

Parses clang JSON AST dumps (no libclang dependency) and enforces four
repo invariants the regex lint tier could only approximate:

  * lock-coverage    -- mutable state in mutex-owning classes is
                        annotated, atomic, const, or vetted.
  * wire-safety      -- network-derived sizes pass a guard before they
                        reach an allocation or loop bound.
  * kernel-purity    -- SIMD/kernel files never allocate, lock, or
                        throw; intrinsics stay confined.
  * metric-catalogue -- metric and span names at registration sites
                        come from src/ops/metric_names.h constants.

Entry points: `python3 scripts/analyzer` (via __main__.py) or
`python3 -m analyzer` with scripts/ on sys.path. The usual front door
is scripts/check_analyzer.sh, which handles clang discovery and the
graceful no-clang skip.
"""
