#!/usr/bin/env python3
"""Project-specific invariant linter for the LCRS tree.

Encodes rules no generic tool knows about this codebase:

  randomness    All stochastic behaviour must flow through lcrs::Rng
                (src/common/rng.h) so experiments replay from one seed.
                std::rand/srand/time(NULL) seeding, std::random_device,
                and raw engine construction are banned outside rng.h.
  naked-new     src/ owns memory through containers and smart pointers;
                naked `new` / `delete` expressions are banned.
  pragma-once   Every header in src/ (and bench/) starts its include
                guard with #pragma once.
  kernel-check  Public (non-anonymous-namespace) functions in src/tensor,
                src/nn, src/binary that consume Tensor arguments must
                validate shapes with LCRS_CHECK / LCRS_ASSERT (directly
                or via a check_* / *_checked helper) before touching data.
  metric-name   Observability metric names live in one catalogue
                (src/common/obs/metric_names.h). Registering an
                instrument with an inline string literal --
                counter("..."), gauge("..."), histogram("...") -- is
                banned in src/ and bench/ outside the catalogue and the
                registry machinery itself (metric_names.h, metrics.h,
                metrics.cpp), so a name cannot silently fork into two
                spellings. ops_server.cpp and flight_recorder.cpp are
                deliberately covered.
  raw-sync      All blocking synchronisation in src/ goes through the
                annotated wrappers in src/common/sync.h (lcrs::Mutex,
                lcrs::MutexLock, lcrs::CondVar) so Clang -Wthread-safety
                and the runtime lock-order checker see every lock. Raw
                std::mutex / std::lock_guard / std::unique_lock /
                std::condition_variable & friends are banned outside
                common/sync.{h,cpp} (which wrap them).
  simd-intrinsics
                Raw SIMD intrinsics (immintrin/arm_neon includes, _mm*
                calls, __m128/__m256 vector types, NEON vld1/vst1) live
                only in the dispatch layer (src/common/simd*) and the
                vetted kernel files (tensor/gemm.cpp, binary/bitmatrix.cpp,
                binary/xnor_gemm.cpp). Everything else calls the
                dispatched wrappers, so LCRS_SIMD=scalar provably covers
                every vector code path and parity tests cannot be
                bypassed by a stray inline intrinsic.

  fuzz-registration
                Every harness fuzz/fuzz_*.cpp must be registered in
                fuzz/CMakeLists.txt (LCRS_FUZZ_HARNESSES) and have a
                non-empty committed corpus under fuzz/corpus/<name>/ --
                an unregistered harness silently never runs, an empty
                corpus replays nothing.
  wire-resize   Parser code in src/ may not size an allocation
                (resize/reserve/container construction) from a value
                read off the wire (ByteReader read_u32/u64/i64) without
                an intervening bound check naming that value (an
                if-guard or LCRS_CHECK). A forged length field must fail
                as ParseError before the allocator sees it.

Vetted exceptions live in scripts/invariant_allowlist.txt as
`rule:path[:symbol]  # reason` lines; path is repo-relative.

Three of these rules (wire-resize, simd-intrinsics, metric-name) have
AST-level successors in scripts/analyzer (wire-safety dataflow,
kernel-purity intrinsic confinement, metric-catalogue), which see
through macros, line breaks, and string temporaries the regexes cannot.
`--delegate-ast-rules` skips the regex versions (and ignores their
allowlist entries) so a clang-equipped run enforces each invariant
exactly once, via scripts/check_analyzer.sh; without the flag the regex
fallbacks keep gcc-only machines covered.

Exit status: 0 when clean, 1 when any unallowlisted violation is found.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
ALLOWLIST_PATH = REPO / "scripts" / "invariant_allowlist.txt"

CPP_SUFFIXES = {".cpp", ".h"}

RANDOMNESS_PATTERNS = [
    (re.compile(r"\bstd::rand\b|\bsrand\s*\("), "std::rand/srand"),
    (re.compile(r"\btime\s*\(\s*(NULL|nullptr|0)\s*\)"), "time(NULL) seeding"),
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"\bstd::(mt19937(_64)?|minstd_rand0?|default_random_engine)"
                r"\s*\("), "raw engine construction"),
]

NAKED_NEW = re.compile(r"(?<![\w.])new\s+[A-Za-z_(:<]")
NAKED_DELETE = re.compile(r"(?<![\w.])delete(\s*\[\s*\])?\s+[A-Za-z_(*]")

# Namespace-scope function definition headers. Deliberately loose: we
# post-filter on the parameter list mentioning Tensor.
FUNC_DEF = re.compile(
    r"^(?:template\s*<[^>]*>\s*)?"
    r"(?P<ret>[A-Za-z_][\w:<>,&*\s]*?)\s+"
    r"(?P<name>(?:[A-Za-z_][\w]*::)*~?[A-Za-z_][\w]*)\s*"
    r"\((?P<params>[^;{}()]*(?:\([^()]*\)[^;{}()]*)*)\)\s*"
    r"(?:const\s*)?(?:noexcept\s*)?{",
    re.MULTILINE | re.DOTALL,
)

CHECK_MARKERS = re.compile(
    r"\bLCRS_CHECK\b|\bLCRS_ASSERT\b|\bcheck_[a-z_]*\s*\(|_checked\s*\(")

# Instrument registration fed a string literal. `\b` keeps find_counter()
# etc. from matching (the preceding `_` is a word character). Runs on
# stripped code, where literal *contents* are blanked but the quote
# characters survive, so the opening `"` is still visible.
METRIC_LITERAL = re.compile(r"\b(?:counter|gauge|histogram)\s*\(\s*\"")

# Raw std blocking-synchronisation vocabulary. Everything here has an
# annotated equivalent in src/common/sync.h; using the std type directly
# hides the lock from -Wthread-safety and the lock-order checker.
RAW_SYNC = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock|condition_variable(?:_any)?)\b")

# The wrapper layer itself: the only place allowed to hold raw std sync.
RAW_SYNC_EXEMPT = {"src/common/sync.h", "src/common/sync.cpp"}

# Raw SIMD vocabulary: vendor headers, x86 _mm*/__m* names, NEON
# load/store/float32x4_t. Runs on stripped code, so mentions in comments
# and strings do not trip it.
SIMD_INTRINSICS = re.compile(
    r"#\s*include\s*<(?:immintrin|x86intrin|emmintrin|xmmintrin|smmintrin|"
    r"tmmintrin|arm_neon)\.h>|"
    r"\b_mm(?:256|512)?_[a-z0-9_]+\s*\(|"
    r"\b__m(?:128|256|512)[di]?\b|"
    r"\bfloat32x[24]_t\b|\bvld1q?_[a-z0-9_]+|\bvst1q?_[a-z0-9_]+")

# The dispatch layer plus the vetted kernel files; the simd* prefix covers
# common/simd.{h,cpp} and common/simd_math.{h,cpp}.
SIMD_EXEMPT_PREFIXES = ("src/common/simd",)
SIMD_EXEMPT_FILES = {
    "src/tensor/gemm.cpp",
    "src/binary/bitmatrix.cpp",
    "src/binary/xnor_gemm.cpp",
}

# A local variable (or member) assigned straight from a ByteReader length/
# count read. The captured name is then tracked forward for allocation use.
WIRE_READ = re.compile(
    r"\b(\w+)\s*=\s*\w+(?:\.|->)read_(?:u32|u64|i64)\s*\(\s*\)")

# How far past the read we look for an unguarded allocation. Generous
# enough to cover any parser function body in this repo.
WIRE_WINDOW = 2000


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving offsets."""
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif ch == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append(re.sub(r"[^\n]", " ", text[i:j]))
            i = j
        elif ch in "\"'":
            j = i + 1
            while j < n and text[j] != ch:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(ch + " " * (j - i - 2) + (ch if j - i >= 2 else ""))
            i = j
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def anonymous_namespace_spans(code: str) -> list[tuple[int, int]]:
    """Byte spans covered by `namespace { ... }` blocks."""
    spans = []
    for m in re.finditer(r"\bnamespace\s*{", code):
        depth, i = 1, m.end()
        while i < len(code) and depth:
            if code[i] == "{":
                depth += 1
            elif code[i] == "}":
                depth -= 1
            i += 1
        spans.append((m.start(), i))
    return spans


def body_span(code: str, open_brace: int) -> int:
    depth, i = 1, open_brace + 1
    while i < len(code) and depth:
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
        i += 1
    return i


# Rules superseded by scripts/analyzer when clang is available; see
# --delegate-ast-rules.
AST_DELEGATED_RULES = ("wire-resize", "simd-intrinsics", "metric-name")


class Linter:
    def __init__(self, delegate_ast: bool = False) -> None:
        self.violations: list[tuple[str, str, int, str]] = []
        self.allow: set[str] = set()
        self.used_allow: set[str] = set()
        self.delegate_ast = delegate_ast

    def load_allowlist(self) -> None:
        if not ALLOWLIST_PATH.exists():
            return
        for raw in ALLOWLIST_PATH.read_text().splitlines():
            entry = raw.split("#", 1)[0].strip()
            if not entry:
                continue
            if self.delegate_ast and entry.startswith(
                    tuple(r + ":" for r in AST_DELEGATED_RULES)):
                continue  # the analyzer's suppression file owns these
            self.allow.add(entry)

    def report(self, rule: str, path: Path, line: int, detail: str,
               symbol: str = "") -> None:
        rel = path.relative_to(REPO).as_posix()
        keys = [f"{rule}:{rel}"]
        if symbol:
            keys.append(f"{rule}:{rel}:{symbol}")
        for key in keys:
            if key in self.allow:
                self.used_allow.add(key)
                return
        self.violations.append((rule, rel, line, detail))

    # --- rules ---

    def lint_randomness(self, path: Path, code: str) -> None:
        if path.relative_to(REPO).as_posix() == "src/common/rng.h":
            return
        for pattern, what in RANDOMNESS_PATTERNS:
            for m in pattern.finditer(code):
                line = code.count("\n", 0, m.start()) + 1
                self.report("randomness", path, line,
                            f"{what} -- route randomness through lcrs::Rng")

    def lint_naked_new(self, path: Path, code: str) -> None:
        for pattern, what in ((NAKED_NEW, "naked new"),
                              (NAKED_DELETE, "naked delete")):
            for m in pattern.finditer(code):
                line = code.count("\n", 0, m.start()) + 1
                self.report("naked-new", path, line,
                            f"{what} -- use containers/std::make_unique")

    def lint_pragma_once(self, path: Path, original: str) -> None:
        if path.suffix != ".h":
            return
        if "#pragma once" not in original:
            self.report("pragma-once", path, 1, "header missing #pragma once")

    def lint_kernel_checks(self, path: Path, code: str) -> None:
        rel = path.relative_to(REPO).as_posix()
        if path.suffix != ".cpp" or not rel.startswith(
                ("src/tensor/", "src/nn/", "src/binary/")):
            return
        anon = anonymous_namespace_spans(code)
        pos = 0
        while True:
            m = FUNC_DEF.search(code, pos)
            if not m:
                break
            open_brace = m.end() - 1
            end = body_span(code, open_brace)
            pos = end
            if any(a <= m.start() < b for a, b in anon):
                continue
            params = m.group("params")
            if "Tensor" not in params:
                continue
            name = m.group("name")
            ret = m.group("ret").strip()
            if ret in ("return", "else", "do") or "=" in ret:
                continue  # mis-parsed statement, not a definition
            body = code[open_brace:end]
            if not CHECK_MARKERS.search(body):
                line = code.count("\n", 0, m.start()) + 1
                self.report(
                    "kernel-check", path, line,
                    f"{name}() takes Tensor args but has no LCRS_CHECK/"
                    "LCRS_ASSERT shape validation", symbol=name)

    def lint_raw_sync(self, path: Path, code: str) -> None:
        rel = path.relative_to(REPO).as_posix()
        if rel in RAW_SYNC_EXEMPT:
            return
        for m in RAW_SYNC.finditer(code):
            line = code.count("\n", 0, m.start()) + 1
            self.report(
                "raw-sync", path, line,
                f"raw {m.group(0)} -- use lcrs::Mutex/MutexLock/CondVar "
                "from common/sync.h (annotated + lock-order checked)")

    def lint_simd_intrinsics(self, path: Path, code: str) -> None:
        rel = path.relative_to(REPO).as_posix()
        if rel.startswith(SIMD_EXEMPT_PREFIXES) or rel in SIMD_EXEMPT_FILES:
            return
        for m in SIMD_INTRINSICS.finditer(code):
            line = code.count("\n", 0, m.start()) + 1
            self.report(
                "simd-intrinsics", path, line,
                f"raw intrinsic `{m.group(0).strip()}` outside the SIMD "
                "dispatch layer -- add a dispatched kernel under "
                "src/common/simd* or the vetted kernel files instead")

    def lint_wire_resize(self, path: Path, code: str) -> None:
        for m in WIRE_READ.finditer(code):
            var = m.group(1)
            window = code[m.end():m.end() + WIRE_WINDOW]
            alloc = re.search(
                rf"(?:\.|->)(?:resize|reserve)\s*\(\s*[^()]*\b{var}\b|"
                rf"\bstd::vector\s*<[^;=]*>\s+\w+\s*\(\s*[^()]*\b{var}\b|"
                rf"\bnew\b[^;]*\b{var}\b", window)
            if not alloc:
                continue
            guarded = re.search(
                rf"if\s*\([^;{{]*\b{var}\b|LCRS_CHECK\s*\([^;]*\b{var}\b",
                window[:alloc.start()])
            if not guarded:
                line = code.count("\n", 0, m.start()) + 1
                self.report(
                    "wire-resize", path, line,
                    f"`{var}` comes off the wire and sizes an allocation "
                    "with no intervening bound check -- validate against "
                    "remaining()/a format cap before allocating",
                    symbol=var)

    def lint_fuzz_registration(self) -> None:
        fuzz_dir = REPO / "fuzz"
        cmake = fuzz_dir / "CMakeLists.txt"
        if not fuzz_dir.is_dir():
            return
        cmake_text = cmake.read_text() if cmake.exists() else ""
        for harness in sorted(fuzz_dir.glob("fuzz_*.cpp")):
            name = harness.stem.removeprefix("fuzz_")
            if not re.search(rf"^\s*{re.escape(name)}\s*$", cmake_text,
                             re.MULTILINE):
                self.report(
                    "fuzz-registration", harness, 1,
                    f"harness not listed in fuzz/CMakeLists.txt "
                    f"LCRS_FUZZ_HARNESSES (expected entry `{name}`)")
            corpus = fuzz_dir / "corpus" / name
            if not (corpus.is_dir() and any(corpus.iterdir())):
                self.report(
                    "fuzz-registration", harness, 1,
                    f"no committed corpus under fuzz/corpus/{name}/ -- "
                    "add seeds via fuzz/gen_seeds.cpp")

    # Only the catalogue and the registry machinery itself may mention
    # instrument names inline; every other obs file (ops_server,
    # flight_recorder, trace) registers through metric_names.h like the
    # rest of the tree.
    METRIC_NAME_EXEMPT = {
        "src/common/obs/metric_names.h",
        "src/common/obs/metrics.h",
        "src/common/obs/metrics.cpp",
    }

    def lint_metric_names(self, path: Path, code: str) -> None:
        rel = path.relative_to(REPO).as_posix()
        if rel in self.METRIC_NAME_EXEMPT:
            return
        for m in METRIC_LITERAL.finditer(code):
            line = code.count("\n", 0, m.start()) + 1
            self.report(
                "metric-name", path, line,
                "inline string literal at an instrument registration -- "
                "use a name from common/obs/metric_names.h")

    # --- driver ---

    def run(self, roots: list[Path]) -> int:
        self.load_allowlist()
        if self.delegate_ast:
            print("lint_invariants: delegating "
                  + ", ".join(AST_DELEGATED_RULES)
                  + " to the AST analyzer (scripts/check_analyzer.sh)")
        files = sorted(
            p for root in roots for p in root.rglob("*")
            if p.suffix in CPP_SUFFIXES and p.is_file())
        for path in files:
            original = path.read_text(errors="replace")
            code = strip_comments_and_strings(original)
            rel = path.relative_to(REPO).as_posix()
            self.lint_pragma_once(path, original)
            if rel.startswith("src/"):
                self.lint_randomness(path, code)
                self.lint_naked_new(path, code)
                self.lint_raw_sync(path, code)
                if not self.delegate_ast:
                    self.lint_wire_resize(path, code)
            if rel.startswith(("src/", "bench/")):
                if not self.delegate_ast:
                    self.lint_metric_names(path, code)
                    self.lint_simd_intrinsics(path, code)
            self.lint_kernel_checks(path, code)
        self.lint_fuzz_registration()
        for rule, rel, line, detail in self.violations:
            print(f"{rel}:{line}: [{rule}] {detail}")
        stale = self.allow - self.used_allow
        for key in sorted(stale):
            print(f"allowlist: stale entry no longer matched: {key}")
        if self.violations or stale:
            print(f"lint_invariants: {len(self.violations)} violation(s), "
                  f"{len(stale)} stale allowlist entr(ies)")
            return 1
        print("lint_invariants: clean")
        return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="*",
                        help="roots to lint (default: src/ bench/)")
    parser.add_argument("--delegate-ast-rules", action="store_true",
                        help="skip the rules superseded by the AST "
                             "analyzer (run scripts/check_analyzer.sh "
                             "alongside)")
    args = parser.parse_args()
    roots = ([Path(p).resolve() for p in args.paths] if args.paths
             else [REPO / "src", REPO / "bench"])
    return Linter(delegate_ast=args.delegate_ast_rules).run(roots)


if __name__ == "__main__":
    sys.exit(main())
