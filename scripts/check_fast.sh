#!/usr/bin/env bash
# Fast inner-loop gate: build + unit-labelled tests only. The ctest
# battery is tiered by label (see tests/CMakeLists.txt):
#   unit         -- seconds each, run on every edit (this script)
#   integration  -- end-to-end browser/edge round trips
#   load         -- concurrent-client load harness against a real server
#   soak         -- sustained mixed-traffic churn
# check_all.sh runs everything (plus sanitizers); this script is the
# sub-minute subset for tight edit-compile-test loops.
#
# Usage: check_fast.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc)}

cmake -B build -S .
cmake --build build -j"$JOBS"
(cd build && ctest --output-on-failure -j"$JOBS" -L unit "$@")
