// Ablation: LCRS vs baselines across network conditions (paper Sec. VI
// "more simulation in different system environments"). Repeats the Table
// II evaluation over congested 4G, nominal 4G, and WiFi links.
#include <cstdio>

#include "baselines/edgent.h"
#include "baselines/lcrs_approach.h"
#include "baselines/mobile_only.h"
#include "baselines/neurosurgeon.h"
#include "bench_util.h"
#include "common/logging.h"

using namespace lcrs;

int main() {
  set_log_level(LogLevel::kWarn);
  std::printf("Ablation: end-to-end latency (ms) across link conditions "
              "(ResNet18, CIFAR10)\n\n");

  baselines::ModelUnderTest model;
  model.name = "ResNet18";
  model.layers = bench::full_width_profile(models::Arch::kResNet18);
  model.input_elems = 3 * 32 * 32;

  Rng rng(9);
  const models::ModelConfig cfg{models::Arch::kResNet18, 3, 32, 32, 10, 1.0};
  core::CompositeNetwork net = core::CompositeNetwork::build(cfg, rng);
  baselines::LcrsModel lm;
  lm.name = "ResNet18";
  lm.shared = models::profile_layers(net.shared_stage(), Shape{3, 32, 32});
  const Shape shared_shape{net.shared_out_c(), net.shared_out_h(),
                           net.shared_out_w()};
  lm.branch = models::profile_layers(net.binary_branch(), shared_shape);
  lm.rest = models::profile_layers(net.main_rest(), shared_shape);
  lm.input_elems = 3 * 32 * 32;
  lm.shared_out_elems = shared_shape.numel();
  lm.exit_fraction = 0.73;

  struct NamedLink {
    const char* name;
    sim::LinkSpec spec;
  };
  const NamedLink links[] = {{"congested-4G", sim::lte_4g_congested()},
                             {"4G (paper)", sim::lte_4g()},
                             {"WiFi", sim::wifi()}};

  std::printf("%-14s %10s %14s %10s %13s\n", "link", "LCRS", "Neurosurgeon",
              "Edgent", "Mobile-only");
  bench::print_rule(66);
  for (const auto& link : links) {
    sim::LinkSpec spec = link.spec;
    spec.jitter_frac = 0.0;  // deterministic means for the table
    const sim::CostModel cost{sim::mobile_web_browser(), sim::edge_server(),
                              spec};
    const sim::Scenario scenario;
    std::printf(
        "%-14s %10.0f %14.0f %10.0f %13.0f\n", link.name,
        baselines::evaluate_lcrs(lm, cost, scenario).total_ms,
        baselines::evaluate_neurosurgeon(model, cost, scenario).total_ms,
        baselines::evaluate_edgent(model, cost, scenario).total_ms,
        baselines::evaluate_mobile_only(model, cost, scenario).total_ms);
  }
  bench::print_rule(66);
  std::printf("\nExpected shape: LCRS's margin is largest on constrained "
              "links (model loading\nand uploads dominate) and narrows on "
              "WiFi where transfers are cheap.\n");
  return 0;
}
