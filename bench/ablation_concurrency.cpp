// Ablation: edge-server capacity under concurrent Web-AR users.
//
// The paper's case for collaborative execution over edge-only includes
// "the computing cost of high concurrent requests is unacceptable"
// (Sec. I). This bench quantifies it two ways:
//   1. Analytically (M/D/1): sustainable recognitions/sec keeping the
//      mean edge response under 100 ms, for edge-only vs LCRS.
//   2. Empirically: saturation throughput of the *real* TCP edge server
//      on this machine under 4 concurrent clients, full-model vs
//      rest-only completions.
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "edge/server.h"
#include "sim/queueing.h"
#include "tensor/tensor_ops.h"

using namespace lcrs;

namespace {

double measure_server_throughput(core::CompositeNetwork& net,
                                 bool full_model, int n_clients,
                                 int requests_each) {
  edge::EdgeServer server(0, [&](const Tensor& shared) {
    // Edge-only is modeled by also charging the conv1 stage at the edge.
    Tensor features = shared;
    if (full_model) {
      // shared here carries the raw input instead.
      features = net.shared_stage().forward(shared, false);
    }
    const Tensor logits = net.forward_main_from_shared(features);
    edge::CompleteResponse r;
    r.probabilities = softmax_rows(logits);
    r.label = argmax(r.probabilities);
    return r;
  });

  Rng rng(9);
  const Tensor input = full_model
                           ? Tensor::randn(Shape{1, 3, 32, 32}, rng)
                           : net.shared_stage().forward(
                                 Tensor::randn(Shape{1, 3, 32, 32}, rng),
                                 false);
  Stopwatch sw;
  std::vector<std::thread> clients;
  for (int c = 0; c < n_clients; ++c) {
    clients.emplace_back([&] {
      edge::Socket conn = edge::connect_local(server.port());
      for (int i = 0; i < requests_each; ++i) {
        conn.send_frame(edge::Frame{edge::MsgType::kCompleteRequest,
                                    edge::make_complete_request(input)});
        (void)conn.recv_frame();
      }
    });
  }
  for (auto& t : clients) t.join();
  return static_cast<double>(n_clients * requests_each) / sw.seconds();
}

}  // namespace

int main() {
  set_log_level(LogLevel::kWarn);
  std::printf("Ablation: edge-server concurrency, ResNet18 / CIFAR10\n\n");

  // Analytic capacity from the calibrated cost model.
  const sim::CostModel cost = sim::CostModel::paper_default();
  const auto profiles = bench::full_width_profile(models::Arch::kResNet18);
  Rng rng(9);
  const models::ModelConfig cfg{models::Arch::kResNet18, 3, 32, 32, 10, 1.0};
  core::CompositeNetwork full_net = core::CompositeNetwork::build(cfg, rng);
  const Shape shared_shape{full_net.shared_out_c(), full_net.shared_out_h(),
                           full_net.shared_out_w()};
  const auto rest_prof =
      models::profile_layers(full_net.main_rest(), shared_shape);

  sim::EdgeLoadProfile load;
  load.full_model_ms = cost.edge_compute_ms(profiles, 0, profiles.size());
  load.rest_only_ms = cost.edge_compute_ms(rest_prof, 0, rest_prof.size());
  load.exit_fraction = 0.73;  // Table I's ResNet18-CIFAR10 exit rate

  std::printf("analytic (M/D/1, mean edge response <= 100 ms):\n");
  std::printf("  edge-only: service %.2f ms -> %.0f recognitions/s\n",
              load.full_model_ms,
              sim::max_sustainable_rate(load.full_model_ms, 100.0));
  std::printf("  LCRS:      effective %.2f ms -> %.0f recognitions/s "
              "(%.1fx capacity)\n\n",
              load.lcrs_effective_ms(),
              sim::max_sustainable_rate(load.lcrs_effective_ms(), 100.0) ,
              load.capacity_multiplier());

  // Empirical: the real TCP server on a width-scaled model.
  const models::ModelConfig small{models::Arch::kResNet18, 3, 32, 32, 10,
                                  0.25};
  Rng rng2(10);
  core::CompositeNetwork net = core::CompositeNetwork::build(small, rng2);
  const double full_rps =
      measure_server_throughput(net, /*full_model=*/true, 4, 6);
  const double rest_rps =
      measure_server_throughput(net, /*full_model=*/false, 4, 6);
  std::printf("empirical (real TCP server, width-0.25 model, 4 clients):\n");
  std::printf("  full-model completions: %.1f req/s\n", full_rps);
  std::printf("  rest-only completions:  %.1f req/s\n", rest_rps);
  std::printf("  per-request speedup %.2fx; with %.0f%% browser exits the "
              "per-recognition edge\n  capacity multiplier is %.1fx.\n",
              rest_rps / full_rps, 100.0 * load.exit_fraction,
              (rest_rps / full_rps) / (1.0 - load.exit_fraction));
  return 0;
}
