// Reproduces Table II: average end-to-end latency (ms) of LCRS vs
// Neurosurgeon, Edgent and Mobile-only on the mobile web browser, for the
// four networks on the CIFAR10-shaped workload over the paper's 4G link.
//
// All approaches are priced by the shared cost model on full-width model
// profiles. LCRS exit fractions use the Table I values the paper reports
// for CIFAR10 (79/73/78% for AlexNet/ResNet18/VGG16, 84% LeNet); run
// bench/table1_training to re-measure them on the synthetic substrate.
#include <cstdio>

#include "baselines/edge_only.h"
#include "baselines/edgent.h"
#include "baselines/lcrs_approach.h"
#include "baselines/mobile_only.h"
#include "baselines/neurosurgeon.h"
#include "bench_util.h"
#include "common/logging.h"

using namespace lcrs;

namespace {

double paper_exit_fraction(models::Arch arch) {
  switch (arch) {
    case models::Arch::kLeNet:
      return 0.84;
    case models::Arch::kAlexNet:
      return 0.79;
    case models::Arch::kResNet18:
      return 0.73;
    case models::Arch::kVgg16:
      return 0.78;
  }
  return 0.8;
}

baselines::LcrsModel lcrs_model_for(models::Arch arch) {
  Rng rng(9);
  const models::ModelConfig cfg{arch, 3, 32, 32, 10, 1.0};
  core::CompositeNetwork net = core::CompositeNetwork::build(cfg, rng);
  baselines::LcrsModel m;
  m.name = models::arch_name(arch);
  m.shared = models::profile_layers(net.shared_stage(), Shape{3, 32, 32});
  const Shape shared_shape{net.shared_out_c(), net.shared_out_h(),
                           net.shared_out_w()};
  m.branch = models::profile_layers(net.binary_branch(), shared_shape);
  m.rest = models::profile_layers(net.main_rest(), shared_shape);
  m.input_elems = 3 * 32 * 32;
  m.shared_out_elems = shared_shape.numel();
  m.exit_fraction = paper_exit_fraction(arch);
  return m;
}

}  // namespace

int main() {
  set_log_level(LogLevel::kWarn);
  const sim::CostModel cost = sim::CostModel::paper_default();
  const sim::Scenario scenario;

  std::printf("Table II: average end-to-end latency on the mobile web "
              "browser (ms)\n");
  std::printf("4G link %.0f/%.0f Mb/s, session of %lld recognitions\n\n",
              cost.network().spec().downlink_mbps,
              cost.network().spec().uplink_mbps,
              static_cast<long long>(scenario.session_samples));
  std::printf("%-10s %10s %14s %10s %13s %11s\n", "-", "LCRS", "Neurosurgeon",
              "Edgent", "Mobile-only", "(Edge-only)");
  bench::print_rule(74);

  for (const auto arch : {models::Arch::kLeNet, models::Arch::kAlexNet,
                          models::Arch::kResNet18, models::Arch::kVgg16}) {
    baselines::ModelUnderTest model;
    model.name = models::arch_name(arch);
    model.layers = bench::full_width_profile(arch);
    model.input_elems = 3 * 32 * 32;

    const baselines::LcrsModel lm = lcrs_model_for(arch);
    const double lcrs =
        baselines::evaluate_lcrs(lm, cost, scenario).total_ms;
    const double neuro =
        baselines::evaluate_neurosurgeon(model, cost, scenario).total_ms;
    const double edgent =
        baselines::evaluate_edgent(model, cost, scenario).total_ms;
    const double mobile =
        baselines::evaluate_mobile_only(model, cost, scenario).total_ms;
    const double edge =
        baselines::evaluate_edge_only(model, cost, scenario).total_ms;
    std::printf("%-10s %10.0f %14.0f %10.0f %13.0f %11.0f\n",
                model.name.c_str(), lcrs, neuro, edgent, mobile, edge);
  }

  bench::print_rule(74);
  std::printf("\nPaper reference (ms): LCRS 37/153/261/264; Neurosurgeon "
              "110/5256/2820/3421;\nEdgent 204/4617/2613/3231; Mobile-only "
              "109/9313/5882/8205 (LeNet/AlexNet/ResNet18/VGG16).\n");
  return 0;
}
