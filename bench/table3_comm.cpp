// Reproduces Table III: average communication cost (ms) per recognition
// -- model loading (amortized over the page session) plus the transfer of
// intermediate results or the initial task -- for the same approaches and
// networks as Table II.
#include <cstdio>

#include "baselines/edge_only.h"
#include "baselines/edgent.h"
#include "baselines/lcrs_approach.h"
#include "baselines/mobile_only.h"
#include "baselines/neurosurgeon.h"
#include "bench_util.h"
#include "common/logging.h"

using namespace lcrs;

namespace {

double paper_exit_fraction(models::Arch arch) {
  switch (arch) {
    case models::Arch::kLeNet:
      return 0.84;
    case models::Arch::kAlexNet:
      return 0.79;
    case models::Arch::kResNet18:
      return 0.73;
    case models::Arch::kVgg16:
      return 0.78;
  }
  return 0.8;
}

}  // namespace

int main() {
  set_log_level(LogLevel::kWarn);
  const sim::CostModel cost = sim::CostModel::paper_default();
  const sim::Scenario scenario;

  std::printf("Table III: average communication cost on the mobile web "
              "browser (ms)\n\n");
  std::printf("%-10s %10s %14s %10s %13s %11s\n", "-", "LCRS", "Neurosurgeon",
              "Edgent", "Mobile-only", "(Edge-only)");
  bench::print_rule(74);

  for (const auto arch : {models::Arch::kLeNet, models::Arch::kAlexNet,
                          models::Arch::kResNet18, models::Arch::kVgg16}) {
    baselines::ModelUnderTest model;
    model.name = models::arch_name(arch);
    model.layers = bench::full_width_profile(arch);
    model.input_elems = 3 * 32 * 32;

    Rng rng(9);
    const models::ModelConfig cfg{arch, 3, 32, 32, 10, 1.0};
    core::CompositeNetwork net = core::CompositeNetwork::build(cfg, rng);
    baselines::LcrsModel lm;
    lm.name = model.name;
    lm.shared = models::profile_layers(net.shared_stage(), Shape{3, 32, 32});
    const Shape shared_shape{net.shared_out_c(), net.shared_out_h(),
                             net.shared_out_w()};
    lm.branch = models::profile_layers(net.binary_branch(), shared_shape);
    lm.rest = models::profile_layers(net.main_rest(), shared_shape);
    lm.input_elems = 3 * 32 * 32;
    lm.shared_out_elems = shared_shape.numel();
    lm.exit_fraction = paper_exit_fraction(arch);

    std::printf("%-10s %10.0f %14.0f %10.0f %13.0f %11.0f\n",
                model.name.c_str(),
                baselines::evaluate_lcrs(lm, cost, scenario).comm_ms,
                baselines::evaluate_neurosurgeon(model, cost, scenario)
                    .comm_ms,
                baselines::evaluate_edgent(model, cost, scenario).comm_ms,
                baselines::evaluate_mobile_only(model, cost, scenario)
                    .comm_ms,
                baselines::evaluate_edge_only(model, cost, scenario).comm_ms);
  }

  bench::print_rule(74);
  std::printf("\nPaper reference (ms): LCRS 19/340/188/234; Neurosurgeon "
              "72/512/297/365;\nEdgent 56/492/287/324; Mobile-only "
              "170/9104/4406/5832 (LeNet/AlexNet/ResNet18/VGG16).\n");
  std::printf("Note: our Neurosurgeon re-optimizes its partition per cost "
              "model, so its VGG16\ncomm can undercut LCRS; the paper pinned "
              "Neurosurgeon to literature partition\npoints. See "
              "EXPERIMENTS.md.\n");
  return 0;
}
