// Ablation for paper Sec. IV-D.1 ("The number of binary branches"):
// compare one binary branch after conv1 against a two-branch cascade
// (conv1 + a deeper attachment). The paper's claim: the second branch
// adds little accuracy over the first but adds browser compute, payload
// and an extra possible interaction, so one branch wins on expected
// latency.
#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"
#include "core/entropy.h"
#include "nn/loss.h"
#include "nn/metrics.h"
#include "nn/optimizer.h"
#include "tensor/tensor_ops.h"

using namespace lcrs;

namespace {

Tensor features_at_depth(core::CompositeNetwork& net, const Tensor& images,
                         std::size_t depth) {
  Tensor out;
  std::vector<std::int64_t> dims;
  const std::int64_t batch = 64;
  for (std::int64_t begin = 0; begin < images.dim(0); begin += batch) {
    const std::int64_t count = std::min(batch, images.dim(0) - begin);
    Tensor f = net.shared_stage().forward(
        images.slice_outer(begin, begin + count), false);
    f = net.main_rest().forward_prefix(f, depth);
    if (out.numel() == 0) {
      dims = f.shape().dims();
      dims[0] = images.dim(0);
      out = Tensor{Shape(dims)};
    }
    const std::int64_t per = f.numel() / count;
    std::copy(f.data(), f.data() + f.numel(), out.data() + begin * per);
  }
  return out;
}

void train_branch(nn::Sequential& branch, const Tensor& train_x,
                  const std::vector<std::int64_t>& train_y) {
  nn::Adam adam(2e-3);
  const std::int64_t batch = 32;
  for (int epoch = 0; epoch < 4; ++epoch) {
    for (std::int64_t begin = 0; begin + batch <= train_x.dim(0);
         begin += batch) {
      branch.zero_grad();
      const Tensor x = train_x.slice_outer(begin, begin + batch);
      const std::vector<std::int64_t> y(train_y.begin() + begin,
                                        train_y.begin() + begin + batch);
      const nn::LossResult r =
          nn::softmax_cross_entropy(branch.forward(x, true), y);
      branch.backward(r.grad_logits);
      adam.step(branch.params());
    }
  }
}

struct CascadeResult {
  double accuracy = 0.0;
  double exit1 = 0.0, exit2 = 0.0;  // exit fraction per branch
  double expected_ms = 0.0;
};

}  // namespace

int main() {
  set_log_level(LogLevel::kWarn);
  std::printf("Ablation (Sec. IV-D.1): one vs two binary branches "
              "(AlexNet, CIFAR10-like)\n\n");

  bench::TrainedCombo combo =
      bench::run_combo(models::Arch::kAlexNet, "CIFAR10", 777);
  core::CompositeNetwork& net = *combo.net;
  const std::size_t depth2 = 3;  // second attachment: after conv2+bn+relu

  // Branch 1 = the jointly trained conv1 branch inside the composite.
  // Branch 2 trains on the deeper frozen features.
  const Tensor train_f2 =
      features_at_depth(net, combo.data.train.images, depth2);
  const Tensor test_f2 =
      features_at_depth(net, combo.data.test.images, depth2);
  Rng rng(778);
  auto branch2 = models::build_binary_branch(
      models::default_branch(models::Arch::kAlexNet), train_f2.dim(1),
      train_f2.dim(2), train_f2.dim(3), 10, rng);
  train_branch(*branch2, train_f2, combo.data.train.labels);

  // Cost pieces.
  const sim::CostModel cost = sim::CostModel::paper_default();
  const auto shared_prof =
      models::profile_layers(net.shared_stage(), Shape{3, 32, 32});
  const Shape shared_shape{net.shared_out_c(), net.shared_out_h(),
                           net.shared_out_w()};
  const auto rest_prof = models::profile_layers(net.main_rest(), shared_shape);
  const auto branch1_prof =
      models::profile_layers(net.binary_branch(), shared_shape);
  const auto branch2_prof = models::profile_layers(
      *branch2, Shape{train_f2.dim(1), train_f2.dim(2), train_f2.dim(3)});

  const double browser1 =
      cost.browser_compute_ms(shared_prof, 0, shared_prof.size()) +
      cost.browser_compute_ms(branch1_prof, 0, branch1_prof.size());
  const double browser2_extra =
      cost.browser_compute_ms(rest_prof, 0, depth2) +
      cost.browser_compute_ms(branch2_prof, 0, branch2_prof.size());
  const std::int64_t up1 = 8 + 32 + 4 * shared_shape.numel();
  const std::int64_t up2 =
      8 + 32 + 4 * (train_f2.numel() / train_f2.dim(0));
  const double edge_full = cost.edge_compute_ms(rest_prof, 0,
                                                rest_prof.size());
  const double edge_from2 =
      cost.edge_compute_ms(rest_prof, depth2, rest_prof.size());
  const sim::Scenario scenario;
  const double down = cost.network().download_ms(scenario.result_bytes);

  const double tau = combo.result.exit_stats.tau;

  // Evaluate both configurations sample-by-sample on the test set.
  CascadeResult one, two;
  const data::Dataset& test = combo.data.test;
  for (std::int64_t i = 0; i < test.size(); ++i) {
    const Tensor x = test.image(i);
    const std::int64_t truth = test.labels[static_cast<std::size_t>(i)];

    const Tensor shared = net.shared_stage().forward(x, false);
    const Tensor logits1 = net.binary_branch().forward(shared, false);
    const Tensor probs1 = softmax_rows(logits1);
    const double e1 = core::normalized_entropy(probs1.data(), probs1.dim(1));

    // One-branch cascade.
    if (e1 < tau) {
      one.exit1 += 1;
      one.accuracy += argmax(probs1) == truth;
      one.expected_ms += browser1;
    } else {
      const Tensor main_logits = net.forward_main_from_shared(shared);
      one.accuracy += argmax_rows(main_logits)[0] == truth;
      one.expected_ms +=
          browser1 + cost.network().upload_ms(up1) + edge_full + down;
    }

    // Two-branch cascade: branch1, then branch2, then edge.
    if (e1 < tau) {
      two.exit1 += 1;
      two.accuracy += argmax(probs1) == truth;
      two.expected_ms += browser1;
      continue;
    }
    const Tensor f2 = net.main_rest().forward_prefix(shared, depth2);
    const Tensor logits2 = branch2->forward(f2, false);
    const Tensor probs2 = softmax_rows(logits2);
    const double e2 = core::normalized_entropy(probs2.data(), probs2.dim(1));
    if (e2 < tau) {
      two.exit2 += 1;
      two.accuracy += argmax(probs2) == truth;
      two.expected_ms += browser1 + browser2_extra;
    } else {
      const Tensor main_logits =
          net.main_rest().forward_suffix(f2, depth2);
      two.accuracy += argmax_rows(main_logits)[0] == truth;
      two.expected_ms += browser1 + browser2_extra +
                         cost.network().upload_ms(up2) + edge_from2 + down;
    }
  }
  const double n = static_cast<double>(test.size());

  std::printf("%-14s %10s %8s %8s %12s\n", "config", "accuracy", "exit1",
              "exit2", "E[lat](ms)");
  bench::print_rule(58);
  std::printf("%-14s %9.1f%% %7.0f%% %7.0f%% %12.1f\n", "one branch",
              100.0 * one.accuracy / n, 100.0 * one.exit1 / n, 0.0,
              one.expected_ms / n);
  std::printf("%-14s %9.1f%% %7.0f%% %7.0f%% %12.1f\n", "two branches",
              100.0 * two.accuracy / n, 100.0 * two.exit1 / n,
              100.0 * two.exit2 / n, two.expected_ms / n);
  bench::print_rule(58);
  std::printf("\nPaper claim: the second branch's accuracy lift is small "
              "next to its added\nbrowser compute/payload, so LCRS uses "
              "exactly one binary branch after conv1.\n");
  return 0;
}
