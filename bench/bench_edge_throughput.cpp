// Edge serving throughput: thread-per-connection inline execution vs the
// worker pool with cross-connection batching.
//
// Two served workloads, following the paper's partition-point ablation:
//
//   conv1 partition  -- the LCRS default: clients upload conv1 feature
//       maps and the edge completes the whole main rest. Dominated by
//       per-sample convolution compute, which batching cannot shrink, so
//       gains are modest.
//   fc partition     -- a deeper split (browser runs through the last
//       pool): the edge completes only the fully-connected stack. The
//       completion is weight-streaming-bound, so a batch of k requests
//       reads each weight matrix once instead of k times -- this is the
//       regime where cross-connection batching pays.
//
// Four serving configs per workload:
//
//   per-conn (pre-PR)  -- the baseline the PR sequence replaces: every
//       connection thread runs the completion inline with the unpacked
//       training kernels, forced to the scalar SIMD level -- exactly the
//       serving stack before the worker pool (PR-5) and the SIMD kernel
//       layer (PR-6) landed. (The binary now builds its scalar fallback
//       and its vector kernels from one source tree, so the faithful
//       pre-PR baseline is the scalar dispatch level.)
//   per-conn packed    -- same per-connection architecture, but with the
//       weights packed via prepare_edge_inference() and the native SIMD
//       level. Isolates the kernel half of the win from the batching
//       half.
//   pool w=1 b=1       -- worker pool without batching: isolates queue /
//       hand-off overhead.
//   pool w=1 b=16      -- the shipped serving shape: pool + batcher. A
//       single worker is deliberate on the single-core benchmark host --
//       extra workers only split batches and add context switches.
//
// For each (workload, serving config, client count) cell, N concurrent
// clients each fire a fixed number of kCompleteRequest frames
// back-to-back at a real loopback EdgeServer and the harness reports
// aggregate requests per second. Correctness is checked inside the
// loop: every reply must be bit-identical to that client's precomputed
// single-request completion under the same config, so a config can only
// "win" by serving the exact same answers faster.
//
// A final interleaved A/B prices the ops plane itself: the same pooled
// config with the HTTP ops server live (and a scraper hammering
// /metrics and /tracez throughout) vs with it disabled. The acceptance
// bar is "within noise".
//
//   ./bench_edge_throughput [requests_per_client] [--json out.json]
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/obs/ops_server.h"
#include "common/simd.h"
#include "edge/server.h"
#include "tensor/tensor_ops.h"

using namespace lcrs;

namespace {

/// One served workload bound to one network instance: how to build a
/// client payload and how the edge completes it (per-sample for the
/// direct configs, batched for the pooled ones; the two must be
/// bit-identical per sample on the same network).
struct Serving {
  std::function<Tensor(Rng&)> make_input;
  edge::CompletionFn per_sample;
  edge::BatchCompletionFn batched;
};

struct Workload {
  std::vector<edge::Frame> requests;    // one pre-encoded frame per client
  std::vector<Tensor> expected;         // bit-exact probabilities per client
  std::vector<std::int64_t> expected_labels;
};

Workload make_workload(const Serving& serving, int n_clients) {
  Workload w;
  Rng rng(314159);
  for (int c = 0; c < n_clients; ++c) {
    const Tensor payload = serving.make_input(rng);
    w.requests.push_back(edge::Frame{edge::MsgType::kCompleteRequest,
                                     edge::make_complete_request(payload)});
    const edge::CompleteResponse oracle = serving.per_sample(payload);
    w.expected_labels.push_back(oracle.label);
    w.expected.push_back(oracle.probabilities);
  }
  return w;
}

struct CellResult {
  double reqs_per_sec = 0.0;
  std::int64_t mismatches = 0;
  std::int64_t batches = 0;
  std::int64_t served = 0;
};

CellResult run_cell(const Serving& serving, const edge::ServerOptions& opts,
                    int n_clients, int requests_each,
                    bool scrape_during = false) {
  auto server =
      opts.direct_execution
          ? std::make_unique<edge::EdgeServer>(0, serving.per_sample, opts)
          : std::make_unique<edge::EdgeServer>(0, serving.batched, opts);

  // When asked, keep a live scraper on the ops plane for the whole
  // measurement window so the A/B prices serving *while being watched*,
  // not just the idle cost of an open listener.
  std::atomic<bool> scrape_done{false};
  std::thread scraper;
  if (scrape_during && server->ops_port() != 0) {
    const std::uint16_t ops_port = server->ops_port();
    scraper = std::thread([&scrape_done, ops_port] {
      int i = 0;
      while (!scrape_done.load(std::memory_order_relaxed)) {
        try {
          obs::http_get(ops_port, (i++ % 2) == 0 ? "/metrics" : "/tracez");
        } catch (const std::exception&) {
          // Scrape failures must never abort the measurement.
        }
        // ~40 scrapes/s -- still orders of magnitude hotter than a real
        // Prometheus interval, but not so hot that the scraper itself
        // becomes the workload on small hosts.
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
      }
    });
  }

  const Workload w = make_workload(serving, n_clients);
  std::atomic<std::int64_t> mismatches{0};
  std::vector<std::thread> clients;
  Stopwatch watch;
  for (int c = 0; c < n_clients; ++c) {
    clients.emplace_back([&, c] {
      const std::size_t idx = static_cast<std::size_t>(c);
      edge::Socket conn = edge::connect_local(server->port());
      for (int i = 0; i < requests_each; ++i) {
        conn.send_frame(w.requests[idx]);
        auto reply = conn.recv_frame();
        while (reply.has_value() && reply->type == edge::MsgType::kBusy) {
          std::this_thread::sleep_for(std::chrono::milliseconds(
              edge::parse_busy_reply(reply->payload)));
          conn.send_frame(w.requests[idx]);
          reply = conn.recv_frame();
        }
        if (!reply.has_value()) {
          ++mismatches;
          return;
        }
        const edge::CompleteResponse resp =
            edge::parse_complete_response(reply->payload);
        if (resp.label != w.expected_labels[idx] ||
            max_abs_diff(resp.probabilities, w.expected[idx]) != 0.0f) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  const double secs = watch.micros() / 1e6;
  scrape_done.store(true);
  if (scraper.joinable()) scraper.join();

  CellResult r;
  r.reqs_per_sec =
      static_cast<double>(n_clients) * requests_each / (secs > 0 ? secs : 1);
  r.mismatches = mismatches.load();
  r.batches = server->batches_dispatched();
  r.served = server->requests_served();
  server->stop();
  return r;
}

/// Runs one cell, optionally pinned to the scalar dispatch level for the
/// pre-PR baseline. The override is process-wide and cells run
/// sequentially, so the oracle, the server, and every client in a scalar
/// cell all compute with scalar kernels -- internally bit-consistent,
/// faithful to the pre-SIMD binary.
CellResult run_cell_at_level(const Serving& serving,
                             const edge::ServerOptions& opts, int n_clients,
                             int requests_each, bool force_scalar) {
  if (force_scalar) {
    simd::ScopedForcedLevel force(simd::Level::kScalar);
    return run_cell(serving, opts, n_clients, requests_each);
  }
  return run_cell(serving, opts, n_clients, requests_each);
}

edge::CompleteResponse probs_to_response(Tensor probs) {
  edge::CompleteResponse r;
  r.label = argmax(probs);
  r.probabilities = std::move(probs);
  return r;
}

Serving conv1_serving(core::CompositeNetwork& net, bool with_batched) {
  Serving s;
  s.make_input = [&net](Rng& r) {
    return net.shared_stage().forward(Tensor::randn(Shape{1, 1, 28, 28}, r),
                                      false);
  };
  s.per_sample = [&net](const Tensor& shared) {
    return probs_to_response(
        softmax_rows(net.forward_main_from_shared(shared)));
  };
  // main_branch_batch_completion() packs the net's Linear layers at
  // construction; the pre-PR baseline must keep its unpacked kernels, so
  // only build the batched fn for configs that actually dispatch batches.
  if (with_batched) s.batched = edge::main_branch_batch_completion(net);
  return s;
}

Serving fc_serving(core::CompositeNetwork& net, std::size_t fc_split) {
  Serving s;
  s.make_input = [&net, fc_split](Rng& r) {
    const Tensor shared = net.shared_stage().forward(
        Tensor::randn(Shape{1, 1, 28, 28}, r), false);
    return net.main_rest().forward_prefix(shared, fc_split);
  };
  s.per_sample = [&net, fc_split](const Tensor& acts) {
    return probs_to_response(
        softmax_rows(net.main_rest().forward_suffix(acts, fc_split)));
  };
  s.batched = [&net, fc_split](const Tensor& batch) {
    // Linear and activation layers are row-independent, so the batched
    // suffix is bit-identical per sample to the solo path.
    const Tensor probs =
        softmax_rows(net.main_rest().forward_suffix(batch, fc_split));
    std::vector<edge::CompleteResponse> out;
    out.reserve(static_cast<std::size_t>(batch.dim(0)));
    for (std::int64_t i = 0; i < batch.dim(0); ++i) {
      out.push_back(probs_to_response(probs.slice_outer(i, i + 1)));
    }
    return out;
  };
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  const std::string json_path = bench::take_json_flag(argc, argv);
  const int requests_each = argc > 1 ? std::atoi(argv[1]) : 100;
  bench::BenchReport report("edge_throughput");

  // Two networks with identical weights (same seed): `base` stays exactly
  // as training left it and serves the pre-PR baseline; `packed` has its
  // Linear layers packed for the transposed-weight eval GEMM, as the new
  // serving path does at startup. Client payloads are bit-identical across
  // the two (packing does not touch the conv stages), so every cell serves
  // the same request stream.
  const models::ModelConfig cfg{models::Arch::kLeNet, 1, 28, 28, 10, 1.0};
  Rng rng_base(2718), rng_packed(2718);
  core::CompositeNetwork base = core::CompositeNetwork::build(cfg, rng_base);
  core::CompositeNetwork packed =
      core::CompositeNetwork::build(cfg, rng_packed);
  packed.prepare_edge_inference();

  // Deeper partition point: the first Linear of the main rest. Clients
  // run the remaining conv/pool prefix themselves and upload the
  // flattened activation; the edge serves only the fc stack.
  std::size_t fc_split = 0;
  while (fc_split < packed.main_rest().size() &&
         packed.main_rest().layer(fc_split).kind() != "linear") {
    ++fc_split;
  }

  struct Config {
    const char* name;
    edge::ServerOptions opts;
    bool use_packed;
    bool force_scalar = false;
  };
  std::vector<Config> configs;
  {
    Config pre_pr{"per-conn (pre-PR)", {}, false};
    pre_pr.opts.direct_execution = true;
    pre_pr.force_scalar = true;
    configs.push_back(pre_pr);

    Config direct_packed{"per-conn packed", {}, true};
    direct_packed.opts.direct_execution = true;
    configs.push_back(direct_packed);

    Config pool_nobatch{"pool w=1 b=1", {}, true};
    pool_nobatch.opts.num_workers = 1;
    pool_nobatch.opts.max_batch = 1;
    configs.push_back(pool_nobatch);

    Config pool_batch{"pool w=1 b=16", {}, true};
    pool_batch.opts.num_workers = 1;
    pool_batch.opts.max_batch = 16;
    pool_batch.opts.max_wait_us = 200.0;
    configs.push_back(pool_batch);
  }

  struct Case {
    const char* name;
    Serving base_serving;
    Serving packed_serving;
  };
  const Case cases[] = {
      {"conv1 partition", conv1_serving(base, /*with_batched=*/false),
       conv1_serving(packed, /*with_batched=*/true)},
      {"fc partition", fc_serving(base, fc_split),
       fc_serving(packed, fc_split)},
  };

  const std::vector<int> client_counts = {1, 4, 16};
  std::printf("edge serving throughput (LeNet, loopback, %d requests/client; "
              "answers verified bit-exact per config)\n",
              requests_each);

  for (const Case& c : cases) {
    std::printf("\n[%s]\n%-20s", c.name, "config");
    for (int n : client_counts) std::printf("  %9dc", n);
    std::printf("   batches@16c\n");

    std::vector<std::vector<double>> table;
    for (const Config& config : configs) {
      const Serving& serving =
          config.use_packed ? c.packed_serving : c.base_serving;
      std::printf("%-20s", config.name);
      std::fflush(stdout);
      std::vector<double> row;
      std::int64_t batches16 = 0, served16 = 0;
      for (int n : client_counts) {
        const CellResult cell = run_cell_at_level(
            serving, config.opts, n, requests_each, config.force_scalar);
        if (cell.mismatches != 0) {
          std::printf("\nFATAL: %lld mismatched replies in %s/%s @%dc\n",
                      static_cast<long long>(cell.mismatches), c.name,
                      config.name, n);
          return 1;
        }
        row.push_back(cell.reqs_per_sec);
        report.add(std::string(c.name) + "/" + config.name + "/" +
                       std::to_string(n) + "c",
                   "req/s", cell.reqs_per_sec);
        if (n == 16) {
          batches16 = cell.batches;
          served16 = cell.served;
        }
        std::printf("  %8.0f/s", cell.reqs_per_sec);
        std::fflush(stdout);
      }
      if (batches16 > 0) {
        std::printf("   %lld (avg %.1f req/batch)",
                    static_cast<long long>(batches16),
                    static_cast<double>(served16) /
                        static_cast<double>(batches16));
      }
      std::printf("\n");
      table.push_back(row);
    }
    const std::size_t at16 = client_counts.size() - 1;
    std::printf("  -> speedup at 16 clients: pool w=1 b=16 vs "
                "per-conn (pre-PR, scalar kernels) = %.2fx; vs per-conn "
                "packed (batching only, same kernels) = %.2fx\n",
                table[3][at16] / table[0][at16],
                table[3][at16] / table[1][at16]);

    // Headline ratio, noise-robust: the benchmark host's effective CPU
    // speed drifts over seconds (shared machine), so cells measured far
    // apart are not comparable. Interleave baseline and pooled cells
    // back-to-back and take the median of per-pair ratios -- host drift
    // hits both halves of a pair roughly equally and cancels in the
    // ratio.
    std::vector<double> ratios;
    for (int rep = 0; rep < 5; ++rep) {
      const CellResult b = run_cell_at_level(c.base_serving, configs[0].opts,
                                             16, requests_each,
                                             /*force_scalar=*/true);
      const CellResult p = run_cell_at_level(c.packed_serving,
                                             configs[3].opts, 16,
                                             requests_each,
                                             /*force_scalar=*/false);
      if (b.mismatches != 0 || p.mismatches != 0) {
        std::printf("FATAL: mismatched replies in interleaved pass\n");
        return 1;
      }
      ratios.push_back(p.reqs_per_sec / b.reqs_per_sec);
    }
    std::sort(ratios.begin(), ratios.end());
    std::printf("  -> interleaved A/B at 16 clients (5 pairs, pooled+SIMD "
                "vs pre-PR scalar): median %.2fx  [min %.2fx, max %.2fx]\n",
                ratios[ratios.size() / 2], ratios.front(), ratios.back());
    report.add(std::string(c.name) + "/interleaved_pool_vs_prepr/16c",
               "ratio", ratios[ratios.size() / 2], ratios.front(),
               ratios.back(), static_cast<int>(ratios.size()));
  }

  // Ops-plane tax: the shipped pooled config on the conv1 workload, ops
  // plane live + actively scraped vs fully disabled. Same interleaving
  // trick as above so host drift cancels in each pair's ratio; the
  // acceptance bar is a median within measurement noise of 1.0x.
  {
    edge::ServerOptions ops_on = {};
    ops_on.num_workers = 1;
    ops_on.max_batch = 16;
    ops_on.max_wait_us = 200.0;
    edge::ServerOptions ops_off = ops_on;
    ops_on.ops_port = 0;  // ephemeral side port, flight recorder on

    const Serving serving = conv1_serving(packed, /*with_batched=*/true);
    std::vector<double> ratios;
    for (int rep = 0; rep < 5; ++rep) {
      const CellResult on =
          run_cell(serving, ops_on, 16, requests_each, /*scrape_during=*/true);
      const CellResult off = run_cell(serving, ops_off, 16, requests_each);
      if (on.mismatches != 0 || off.mismatches != 0) {
        std::printf("FATAL: mismatched replies in ops A/B pass\n");
        return 1;
      }
      ratios.push_back(on.reqs_per_sec / off.reqs_per_sec);
    }
    std::sort(ratios.begin(), ratios.end());
    std::printf("\n[ops plane]\n  -> interleaved A/B at 16 clients (5 pairs, "
                "ops on+scraped vs ops off, conv1/pool w=1 b=16): median "
                "%.2fx  [min %.2fx, max %.2fx]\n",
                ratios[ratios.size() / 2], ratios.front(), ratios.back());
    report.add("ops_plane/interleaved_on_vs_off/16c", "ratio",
               ratios[ratios.size() / 2], ratios.front(), ratios.back(),
               static_cast<int>(ratios.size()));
  }

  if (!json_path.empty()) {
    if (!report.write(json_path)) return 1;
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
