// Reproduces Table I: joint-training results of LCRS for every
// (network, dataset) pair -- main/binary branch accuracies, the screened
// exit threshold tau, the exit probability over 100 random samples, and
// the model sizes of the two branches.
//
// Accuracies come from width-scaled networks trained on the synthetic
// dataset substitutes (see DESIGN.md); size columns are computed from the
// full-width architectures.
#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/inference.h"

using namespace lcrs;

namespace {

/// Exit probability measured the paper's way: 100 random samples through
/// Algorithm 2 with the screened tau.
double measure_exit_percent(core::CompositeNetwork& net, double tau,
                            const data::Dataset& test, Rng& rng) {
  const std::int64_t n = std::min<std::int64_t>(100, test.size());
  std::int64_t exits = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t idx = rng.randint(0, test.size() - 1);
    const core::InferenceResult r = core::collaborative_infer(
        net, core::ExitPolicy{tau}, test.image(idx));
    if (r.exit_point == core::ExitPoint::kBinaryBranch) ++exits;
  }
  return 100.0 * static_cast<double>(exits) / static_cast<double>(n);
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  // Optional filter: run only the named architecture (resume support).
  const std::string only = argc > 1 ? argv[1] : "";
  std::printf("Table I: performance of training results\n");
  std::printf("(synthetic datasets; accuracies from width-scaled training, "
              "sizes from full-width models)\n\n");
  std::printf("%-24s %8s %8s %11s %6s %9s %9s\n", "Network/Dataset",
              "M_Acc(%)", "B_Acc(%)", "Threshold", "Exit%", "M_size",
              "B_size");
  bench::print_rule(80);

  const models::Arch archs[] = {models::Arch::kLeNet, models::Arch::kAlexNet,
                                models::Arch::kResNet18,
                                models::Arch::kVgg16};
  const char* datasets[] = {"MNIST", "FashionMNIST", "CIFAR10", "CIFAR100"};

  std::uint64_t seed = 1000;
  for (const auto arch : archs) {
    if (!only.empty() && models::arch_name(arch) != only) {
      seed += 4;  // keep per-combo seeds stable under filtering
      continue;
    }
    for (const char* dataset : datasets) {
      Stopwatch sw;
      bench::TrainedCombo combo = bench::run_combo(arch, dataset, seed++);
      Rng probe_rng(seed * 77);
      const double exit_pct =
          measure_exit_percent(*combo.net, combo.result.exit_stats.tau,
                               combo.data.test, probe_rng);
      std::printf("%-24s %8.2f %8.2f %11.4f %6.0f %8.3fM %8.3fM  (%.0fs)\n",
                  (combo.network + "-" + combo.dataset).c_str(),
                  100.0 * combo.result.main_accuracy,
                  100.0 * combo.result.binary_accuracy,
                  combo.result.exit_stats.tau, exit_pct, combo.main_size_mb,
                  combo.binary_size_mb, sw.seconds());
      std::fflush(stdout);
    }
  }

  bench::print_rule(80);
  std::printf("\nPaper reference (Table I): binary branch reduces memory "
              "~16x-30x; M_Acc > B_Acc by 1-5 points; exit%% 60-94.\n");
  return 0;
}
