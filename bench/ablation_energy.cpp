// Ablation: mobile-device energy per recognition (mJ) across approaches.
// The paper motivates LCRS by the "computation and energy consumption"
// pressure on the mobile web browser; this bench quantifies it under the
// calibrated device/radio energy model.
#include <cstdio>

#include "baselines/edge_only.h"
#include "baselines/edgent.h"
#include "baselines/lcrs_approach.h"
#include "baselines/mobile_only.h"
#include "baselines/neurosurgeon.h"
#include "bench_util.h"
#include "common/logging.h"

using namespace lcrs;

int main() {
  set_log_level(LogLevel::kWarn);
  const sim::CostModel cost = sim::CostModel::paper_default();
  const sim::Scenario scenario;

  std::printf("Ablation: mobile-device energy per recognition (mJ, "
              "CIFAR10 networks)\n");
  std::printf("device model: compute %.1f W, TX %.1f W, RX %.1f W\n\n",
              cost.energy().spec().compute_watts,
              cost.energy().spec().tx_watts, cost.energy().spec().rx_watts);
  std::printf("%-10s %10s %14s %10s %13s %11s\n", "-", "LCRS", "Neurosurgeon",
              "Edgent", "Mobile-only", "Edge-only");
  bench::print_rule(74);

  for (const auto arch : {models::Arch::kLeNet, models::Arch::kAlexNet,
                          models::Arch::kResNet18, models::Arch::kVgg16}) {
    baselines::ModelUnderTest model;
    model.name = models::arch_name(arch);
    model.layers = bench::full_width_profile(arch);
    model.input_elems = 3 * 32 * 32;

    Rng rng(9);
    const models::ModelConfig cfg{arch, 3, 32, 32, 10, 1.0};
    core::CompositeNetwork net = core::CompositeNetwork::build(cfg, rng);
    baselines::LcrsModel lm;
    lm.shared = models::profile_layers(net.shared_stage(), Shape{3, 32, 32});
    const Shape shared_shape{net.shared_out_c(), net.shared_out_h(),
                             net.shared_out_w()};
    lm.branch = models::profile_layers(net.binary_branch(), shared_shape);
    lm.rest = models::profile_layers(net.main_rest(), shared_shape);
    lm.input_elems = 3 * 32 * 32;
    lm.shared_out_elems = shared_shape.numel();
    lm.exit_fraction = 0.78;

    std::printf(
        "%-10s %10.0f %14.0f %10.0f %13.0f %11.0f\n", model.name.c_str(),
        baselines::evaluate_lcrs(lm, cost, scenario).device_energy_mj,
        baselines::evaluate_neurosurgeon(model, cost, scenario)
            .device_energy_mj,
        baselines::evaluate_edgent(model, cost, scenario).device_energy_mj,
        baselines::evaluate_mobile_only(model, cost, scenario)
            .device_energy_mj,
        baselines::evaluate_edge_only(model, cost, scenario)
            .device_energy_mj);
  }

  bench::print_rule(74);
  std::printf("\nExpected shape: LCRS's short binary forward and rare "
              "uploads give the lowest\ndevice energy on deep networks; "
              "mobile-only burns the battery on compute.\n");
  return 0;
}
