// Ablation for paper Sec. IV-D.2 ("Location of binary branch"): attach
// the binary branch after deeper points e_h of the main branch and
// measure (i) the branch's accuracy and (ii) the expected per-recognition
// latency E[e_h] under the cost model. The paper argues E[e_h] - E[e_1] >
// 0: deeper attachment buys little accuracy but pays larger browser
// compute, model payload and upload sizes.
#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"
#include "nn/loss.h"
#include "nn/metrics.h"
#include "nn/optimizer.h"

using namespace lcrs;

namespace {

/// Features of `images` after conv1 + the first `depth` layers of rest.
Tensor features_at_depth(core::CompositeNetwork& net, const Tensor& images,
                         std::size_t depth) {
  Tensor out;
  std::vector<std::int64_t> dims;
  const std::int64_t batch = 64;
  for (std::int64_t begin = 0; begin < images.dim(0); begin += batch) {
    const std::int64_t count = std::min(batch, images.dim(0) - begin);
    Tensor f = net.shared_stage().forward(
        images.slice_outer(begin, begin + count), false);
    f = net.main_rest().forward_prefix(f, depth);
    if (out.numel() == 0) {
      dims = f.shape().dims();
      dims[0] = images.dim(0);
      out = Tensor{Shape(dims)};
    }
    const std::int64_t per = f.numel() / count;
    std::copy(f.data(), f.data() + f.numel(), out.data() + begin * per);
  }
  return out;
}

double train_branch(nn::Sequential& branch, const Tensor& train_x,
                    const std::vector<std::int64_t>& train_y,
                    const Tensor& test_x,
                    const std::vector<std::int64_t>& test_y) {
  nn::Adam adam(2e-3);
  const std::int64_t batch = 32;
  for (int epoch = 0; epoch < 4; ++epoch) {
    for (std::int64_t begin = 0; begin + batch <= train_x.dim(0);
         begin += batch) {
      branch.zero_grad();
      const Tensor x = train_x.slice_outer(begin, begin + batch);
      const std::vector<std::int64_t> y(train_y.begin() + begin,
                                        train_y.begin() + begin + batch);
      const nn::LossResult r =
          nn::softmax_cross_entropy(branch.forward(x, true), y);
      branch.backward(r.grad_logits);
      adam.step(branch.params());
    }
  }
  return nn::accuracy(branch.forward(test_x, false), test_y);
}

}  // namespace

int main() {
  set_log_level(LogLevel::kWarn);
  std::printf("Ablation (Sec. IV-D.2): binary-branch attachment depth on "
              "AlexNet / CIFAR10-like\n\n");

  bench::TrainedCombo combo =
      bench::run_combo(models::Arch::kAlexNet, "CIFAR10", 4242);
  std::printf("main branch: M_Acc %.2f%%\n\n",
              100.0 * combo.result.main_accuracy);

  const sim::CostModel cost = sim::CostModel::paper_default();
  const sim::Scenario scenario;
  // Candidate attachment depths: after conv1 (e_1) and after each of the
  // first few layers of the main rest.
  const std::size_t depths[] = {0, 2, 3, 6};

  std::printf("%8s %10s %12s %12s %14s\n", "depth", "B_Acc(%)", "upload(KB)",
              "E[lat](ms)", "extra browser");
  bench::print_rule(62);
  for (const std::size_t depth : depths) {
    const Tensor train_f =
        features_at_depth(*combo.net, combo.data.train.images, depth);
    const Tensor test_f =
        features_at_depth(*combo.net, combo.data.test.images, depth);
    LCRS_CHECK(train_f.rank() == 4, "branch attachment needs a conv map");

    Rng rng(300 + depth);
    auto branch = models::build_binary_branch(
        models::default_branch(models::Arch::kAlexNet), train_f.dim(1),
        train_f.dim(2), train_f.dim(3), 10, rng);
    const double acc =
        train_branch(*branch, train_f, combo.data.train.labels, test_f,
                     combo.data.test.labels);

    // Expected latency: browser always runs conv1 + prefix + branch; on a
    // miss it uploads the attachment-point features.
    const auto shared_prof = models::profile_layers(
        combo.net->shared_stage(), Shape{3, 32, 32});
    const auto rest_prof = models::profile_layers(
        combo.net->main_rest(),
        Shape{combo.net->shared_out_c(), combo.net->shared_out_h(),
              combo.net->shared_out_w()});
    const auto branch_prof = models::profile_layers(
        *branch, Shape{train_f.dim(1), train_f.dim(2), train_f.dim(3)});

    const double browser_ms =
        cost.browser_compute_ms(shared_prof, 0, shared_prof.size()) +
        cost.browser_compute_ms(rest_prof, 0, depth) +
        cost.browser_compute_ms(branch_prof, 0, branch_prof.size());
    const std::int64_t upload_bytes =
        8 + 8 * 4 + 4 * (train_f.numel() / train_f.dim(0));
    const double miss = 0.25;  // fixed miss rate isolates the geometry
    const double expected_ms =
        browser_ms + miss * (cost.network().upload_ms(upload_bytes) +
                             cost.edge_compute_ms(rest_prof, depth,
                                                  rest_prof.size()) +
                             cost.network().download_ms(
                                 scenario.result_bytes));
    const double extra_browser =
        cost.browser_compute_ms(rest_prof, 0, depth);
    std::printf("%8zu %10.2f %12.1f %12.1f %13.1fms\n", depth, 100.0 * acc,
                static_cast<double>(upload_bytes) / 1024.0, expected_ms,
                extra_browser);
    std::fflush(stdout);
  }

  bench::print_rule(62);
  std::printf("\nPaper claim: E[e_h] - E[e_1] > 0 -- accuracy gains from "
              "deeper attachment are\nsmall while the added browser compute "
              "dominates, so one branch after conv1 wins.\n");
  return 0;
}
