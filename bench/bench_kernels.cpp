// Kernel microbenchmarks (google-benchmark): the XNOR/popcount path vs
// full-precision GEMM and convolution -- the mechanism behind the paper's
// Sec. III-B/IV claims of faster, memory-saving binary inference.
//
// Every benchmark verifies the timed kernel's output against a
// forced-scalar reference computed up front, inside the iteration loop
// (timing paused): a wrong-but-fast kernel fails the run with
// SkipWithError instead of posting a headline number. Bit-domain kernels
// must match exactly; float kernels get the k-scaled cross-level
// tolerance documented in DESIGN.md "SIMD kernel layer".
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <sstream>

#include "binary/binary_conv2d.h"
#include "binary/bitmatrix.h"
#include "binary/xnor_gemm.h"
#include "common/rng.h"
#include "common/simd.h"
#include "nn/conv2d.h"
#include "tensor/gemm.h"

namespace lcrs {
namespace {

// Returns false (after flagging the run) when `got` strays from `want`
// by more than `tol`; tol = 0 demands bit-equality.
bool verify(benchmark::State& state, const float* got, const float* want,
            std::int64_t count, float tol, const char* what) {
  for (std::int64_t i = 0; i < count; ++i) {
    const float diff = std::fabs(got[i] - want[i]);
    if (!(diff <= tol)) {  // catches NaN too
      std::ostringstream msg;
      msg << what << " diverged from scalar reference at index " << i
          << ": got " << got[i] << " want " << want[i] << " (tol " << tol
          << ")";
      state.SkipWithError(msg.str().c_str());
      return false;
    }
  }
  return true;
}

void BM_FloatGemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::randn(Shape{n, n}, rng);
  const Tensor b = Tensor::randn(Shape{n, n}, rng);
  Tensor c{Shape{n, n}};
  Tensor ref{Shape{n, n}};
  {
    simd::ScopedForcedLevel force(simd::Level::kScalar);
    gemm(a.data(), b.data(), ref.data(), n, n, n);
  }
  const float tol = 1e-3f * static_cast<float>(n);
  for (auto _ : state) {
    gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
    state.PauseTiming();
    if (!verify(state, c.data(), ref.data(), n * n, tol, "gemm")) return;
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_FloatGemm)->Arg(64)->Arg(128)->Arg(256);

void BM_FloatGemmPackedA(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::randn(Shape{n, n}, rng);
  const Tensor b = Tensor::randn(Shape{n, n}, rng);
  const PackedA packed = pack_a_panels(a.data(), n, n);
  Tensor c{Shape{n, n}};
  Tensor ref{Shape{n, n}};
  {
    simd::ScopedForcedLevel force(simd::Level::kScalar);
    gemm(a.data(), b.data(), ref.data(), n, n, n);
  }
  const float tol = 1e-3f * static_cast<float>(n);
  for (auto _ : state) {
    gemm_packed_a(packed, b.data(), c.data(), n);
    benchmark::DoNotOptimize(c.data());
    state.PauseTiming();
    if (!verify(state, c.data(), ref.data(), n * n, tol, "gemm_packed_a")) {
      return;
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_FloatGemmPackedA)->Arg(64)->Arg(128)->Arg(256);

void BM_XnorGemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  const binary::BitMatrix a =
      binary::BitMatrix::pack(Tensor::randn(Shape{n, n}, rng));
  const binary::BitMatrix b =
      binary::BitMatrix::pack(Tensor::randn(Shape{n, n}, rng));
  Tensor c{Shape{n, n}};
  Tensor ref{Shape{n, n}};
  {
    simd::ScopedForcedLevel force(simd::Level::kScalar);
    binary::xnor_gemm(a, b, ref.data());
  }
  for (auto _ : state) {
    binary::xnor_gemm(a, b, c.data());
    benchmark::DoNotOptimize(c.data());
    state.PauseTiming();
    // Integer-domain kernel: bit-identical, no tolerance.
    if (!verify(state, c.data(), ref.data(), n * n, 0.0f, "xnor_gemm")) {
      return;
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_XnorGemm)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_BitPack(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(2);
  const Tensor t = Tensor::randn(Shape{n, n}, rng);
  binary::BitMatrix ref(n, n);
  {
    simd::ScopedForcedLevel force(simd::Level::kScalar);
    binary::pack_signs(t.data(), n, n, &ref);
  }
  binary::BitMatrix m(n, n);
  for (auto _ : state) {
    binary::pack_signs(t.data(), n, n, &m);
    benchmark::DoNotOptimize(m.row(0));
    state.PauseTiming();
    if (!(m == ref)) {
      state.SkipWithError("pack_signs diverged from scalar reference");
      return;
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_BitPack)->Arg(256);

void BM_FloatConv2d(benchmark::State& state) {
  const std::int64_t channels = state.range(0);
  Rng rng(3);
  nn::Conv2d conv(channels, channels, 3, 1, 1, 32, 32, rng);
  const Tensor x = Tensor::randn(Shape{1, channels, 32, 32}, rng);
  Tensor ref;
  {
    simd::ScopedForcedLevel force(simd::Level::kScalar);
    ref = conv.forward(x, false);
  }
  const float tol = 1e-3f * static_cast<float>(conv.geometry().patch_size());
  for (auto _ : state) {
    Tensor y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
    state.PauseTiming();
    if (!verify(state, y.data(), ref.data(), y.numel(), tol, "conv2d")) {
      return;
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * conv.flops_per_sample());
}
BENCHMARK(BM_FloatConv2d)->Arg(32)->Arg(64)->Arg(128);

// The serving-path shape: prepared (panel-packed) conv over a coalesced
// batch, the configuration the edge batcher runs after PR-6.
void BM_FloatConv2dPreparedBatch(benchmark::State& state) {
  const std::int64_t batch = state.range(0);
  Rng rng(3);
  nn::Conv2d conv(6, 16, 5, 1, 0, 12, 12, rng);  // LeNet conv2 geometry
  conv.prepare_inference();
  const Tensor x = Tensor::randn(Shape{batch, 6, 12, 12}, rng);
  Tensor ref;
  {
    simd::ScopedForcedLevel force(simd::Level::kScalar);
    ref = conv.forward(x, false);
  }
  const float tol = 1e-3f * static_cast<float>(conv.geometry().patch_size());
  for (auto _ : state) {
    Tensor y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
    state.PauseTiming();
    if (!verify(state, y.data(), ref.data(), y.numel(), tol,
                "prepared conv2d")) {
      return;
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * batch *
                          conv.flops_per_sample());
}
BENCHMARK(BM_FloatConv2dPreparedBatch)->Arg(1)->Arg(4)->Arg(16);

void BM_BinaryConv2dReference(benchmark::State& state) {
  const std::int64_t channels = state.range(0);
  Rng rng(4);
  binary::BinaryConv2d conv(channels, channels, 3, 1, 1, 32, 32, rng);
  const Tensor x = Tensor::randn(Shape{1, channels, 32, 32}, rng);
  Tensor ref;
  {
    simd::ScopedForcedLevel force(simd::Level::kScalar);
    ref = conv.forward(x, false);
  }
  const float tol = 1e-3f * static_cast<float>(conv.geometry().patch_size());
  for (auto _ : state) {
    Tensor y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
    state.PauseTiming();
    if (!verify(state, y.data(), ref.data(), y.numel(), tol,
                "binary conv reference")) {
      return;
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * conv.flops_per_sample());
}
BENCHMARK(BM_BinaryConv2dReference)->Arg(64);

void BM_BinaryConv2dXnor(benchmark::State& state) {
  const std::int64_t channels = state.range(0);
  Rng rng(4);
  binary::BinaryConv2d conv(channels, channels, 3, 1, 1, 32, 32, rng);
  conv.prepare_inference();
  const Tensor x = Tensor::randn(Shape{1, channels, 32, 32}, rng);
  // The strongest gate available: forward_fast must reproduce the
  // float-sign reference path bit for bit (the PR-2 exactness property).
  const Tensor ref = conv.forward(x, false);
  for (auto _ : state) {
    Tensor y = conv.forward_fast(x);
    benchmark::DoNotOptimize(y.data());
    state.PauseTiming();
    if (!verify(state, y.data(), ref.data(), y.numel(), 0.0f,
                "xnor conv fast path")) {
      return;
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * conv.flops_per_sample());
}
BENCHMARK(BM_BinaryConv2dXnor)->Arg(32)->Arg(64)->Arg(128);

}  // namespace
}  // namespace lcrs

BENCHMARK_MAIN();
