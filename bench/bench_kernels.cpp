// Kernel microbenchmarks (google-benchmark): the XNOR/popcount path vs
// full-precision GEMM and convolution -- the mechanism behind the paper's
// Sec. III-B/IV claims of faster, memory-saving binary inference.
#include <benchmark/benchmark.h>

#include "binary/binary_conv2d.h"
#include "binary/bitmatrix.h"
#include "binary/xnor_gemm.h"
#include "common/rng.h"
#include "nn/conv2d.h"
#include "tensor/gemm.h"

namespace lcrs {
namespace {

void BM_FloatGemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::randn(Shape{n, n}, rng);
  const Tensor b = Tensor::randn(Shape{n, n}, rng);
  Tensor c{Shape{n, n}};
  for (auto _ : state) {
    gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_FloatGemm)->Arg(64)->Arg(128)->Arg(256);

void BM_XnorGemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  const binary::BitMatrix a =
      binary::BitMatrix::pack(Tensor::randn(Shape{n, n}, rng));
  const binary::BitMatrix b =
      binary::BitMatrix::pack(Tensor::randn(Shape{n, n}, rng));
  Tensor c{Shape{n, n}};
  for (auto _ : state) {
    binary::xnor_gemm(a, b, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_XnorGemm)->Arg(64)->Arg(128)->Arg(256);

void BM_BitPack(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(2);
  const Tensor t = Tensor::randn(Shape{n, n}, rng);
  for (auto _ : state) {
    binary::BitMatrix m = binary::BitMatrix::pack(t);
    benchmark::DoNotOptimize(m.row(0));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_BitPack)->Arg(256);

void BM_FloatConv2d(benchmark::State& state) {
  const std::int64_t channels = state.range(0);
  Rng rng(3);
  nn::Conv2d conv(channels, channels, 3, 1, 1, 32, 32, rng);
  const Tensor x = Tensor::randn(Shape{1, channels, 32, 32}, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * conv.flops_per_sample());
}
BENCHMARK(BM_FloatConv2d)->Arg(32)->Arg(64)->Arg(128);

void BM_BinaryConv2dReference(benchmark::State& state) {
  const std::int64_t channels = state.range(0);
  Rng rng(4);
  binary::BinaryConv2d conv(channels, channels, 3, 1, 1, 32, 32, rng);
  const Tensor x = Tensor::randn(Shape{1, channels, 32, 32}, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * conv.flops_per_sample());
}
BENCHMARK(BM_BinaryConv2dReference)->Arg(64);

void BM_BinaryConv2dXnor(benchmark::State& state) {
  const std::int64_t channels = state.range(0);
  Rng rng(4);
  binary::BinaryConv2d conv(channels, channels, 3, 1, 1, 32, 32, rng);
  conv.prepare_inference();
  const Tensor x = Tensor::randn(Shape{1, channels, 32, 32}, rng);
  for (auto _ : state) {
    Tensor y = conv.forward_fast(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * conv.flops_per_sample());
}
BENCHMARK(BM_BinaryConv2dXnor)->Arg(32)->Arg(64)->Arg(128);

}  // namespace
}  // namespace lcrs

BENCHMARK_MAIN();
