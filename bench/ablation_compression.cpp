// Ablation: binarization vs int8 quantization vs full precision.
//
// The paper picks 1-bit binarization over classic compression because the
// browser payload must be tiny AND the arithmetic must accelerate (Sec.
// II-B / III-B). This bench quantifies both axes: what each
// representation ships to the browser, how long the 4G load takes, and
// the per-sample browser compute under the device model.
#include <cstdio>

#include "baselines/lcrs_approach.h"
#include "bench_util.h"
#include "binary/quantized.h"
#include "common/logging.h"

using namespace lcrs;

int main() {
  set_log_level(LogLevel::kWarn);
  const sim::CostModel cost = sim::CostModel::paper_default();

  std::printf("Ablation: model representation vs browser cost (CIFAR10 "
              "networks)\n\n");
  std::printf("%-10s | %9s %9s %9s | %9s %9s %9s | %10s %10s\n", "-",
              "fp32(MB)", "int8(MB)", "bin(MB)", "fp32 load", "int8 load",
              "bin load", "fp32 comp", "bin comp");
  bench::print_rule(104);

  for (const auto arch : {models::Arch::kLeNet, models::Arch::kAlexNet,
                          models::Arch::kResNet18, models::Arch::kVgg16}) {
    Rng rng(9);
    const models::ModelConfig cfg{arch, 3, 32, 32, 10, 1.0};
    auto mono = models::build_monolithic(cfg, rng);
    core::CompositeNetwork net = core::CompositeNetwork::build(cfg, rng);

    const std::int64_t fp32_bytes = mono->param_bytes();
    const std::int64_t int8_bytes = binary::int8_payload_bytes(*mono);
    // LCRS browser payload: float conv1 + bit-packed branch.
    std::int64_t bin_bytes = net.shared_stage().param_bytes() +
                             models::browser_payload_bytes(
                                 net.binary_branch());

    const auto profiles = models::profile_layers(*mono, Shape{3, 32, 32});
    const auto shared_prof =
        models::profile_layers(net.shared_stage(), Shape{3, 32, 32});
    const Shape shared_shape{net.shared_out_c(), net.shared_out_h(),
                             net.shared_out_w()};
    const auto branch_prof =
        models::profile_layers(net.binary_branch(), shared_shape);

    const auto mb = [](std::int64_t b) {
      return static_cast<double>(b) / (1024.0 * 1024.0);
    };
    // int8 inference runs the same MAC count as fp32 on the browser (no
    // XNOR shortcut), so its compute column equals fp32's.
    std::printf("%-10s | %9.3f %9.3f %9.3f | %8.0fms %8.0fms %8.0fms | "
                "%9.0fms %9.0fms\n",
                models::arch_name(arch).c_str(), mb(fp32_bytes),
                mb(int8_bytes), mb(bin_bytes),
                cost.network().download_ms(fp32_bytes),
                cost.network().download_ms(int8_bytes),
                cost.network().download_ms(bin_bytes),
                cost.browser_compute_ms(profiles, 0, profiles.size()),
                cost.browser_compute_ms(shared_prof, 0, shared_prof.size()) +
                    cost.browser_compute_ms(branch_prof, 0,
                                            branch_prof.size()));
  }

  bench::print_rule(104);
  std::printf("\nTakeaway: int8 shrinks the payload ~4x but leaves browser "
              "compute untouched;\nonly the binary branch wins on both axes "
              "at once, which is the paper's design\nargument for LCRS.\n");
  return 0;
}
