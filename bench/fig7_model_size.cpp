// Reproduces Figure 7: bytes each approach ships to the mobile web
// browser for the CIFAR10 networks -- the reason partition-offloading
// approaches stall at web page load while LCRS stays lightweight.
#include <cstdio>

#include "baselines/edgent.h"
#include "baselines/lcrs_approach.h"
#include "baselines/mobile_only.h"
#include "baselines/neurosurgeon.h"
#include "bench_util.h"
#include "common/logging.h"

using namespace lcrs;

int main() {
  set_log_level(LogLevel::kWarn);
  const sim::CostModel cost = sim::CostModel::paper_default();
  const sim::Scenario scenario;

  std::printf("Figure 7: model size on the mobile web browser (MB, "
              "CIFAR10)\n\n");
  std::printf("%-10s %10s %14s %10s %13s\n", "-", "LCRS", "Neurosurgeon",
              "Edgent", "Mobile-only");
  bench::print_rule(62);

  for (const auto arch : {models::Arch::kLeNet, models::Arch::kAlexNet,
                          models::Arch::kResNet18, models::Arch::kVgg16}) {
    baselines::ModelUnderTest model;
    model.name = models::arch_name(arch);
    model.layers = bench::full_width_profile(arch);
    model.input_elems = 3 * 32 * 32;

    Rng rng(9);
    const models::ModelConfig cfg{arch, 3, 32, 32, 10, 1.0};
    core::CompositeNetwork net = core::CompositeNetwork::build(cfg, rng);
    baselines::LcrsModel lm;
    lm.shared = models::profile_layers(net.shared_stage(), Shape{3, 32, 32});
    const Shape shared_shape{net.shared_out_c(), net.shared_out_h(),
                             net.shared_out_w()};
    lm.branch = models::profile_layers(net.binary_branch(), shared_shape);
    lm.rest = models::profile_layers(net.main_rest(), shared_shape);
    lm.input_elems = 3 * 32 * 32;
    lm.shared_out_elems = shared_shape.numel();
    lm.exit_fraction = 0.8;

    const auto mb = [](std::int64_t bytes) {
      return static_cast<double>(bytes) / (1024.0 * 1024.0);
    };
    std::printf(
        "%-10s %10.3f %14.3f %10.3f %13.3f\n", model.name.c_str(),
        mb(lm.browser_model_bytes()),
        mb(baselines::evaluate_neurosurgeon(model, cost, scenario)
               .browser_model_bytes),
        mb(baselines::evaluate_edgent(model, cost, scenario)
               .browser_model_bytes),
        mb(baselines::evaluate_mobile_only(model, cost, scenario)
               .browser_model_bytes));
  }

  bench::print_rule(62);
  std::printf("\nPaper reference: LCRS's browser payload is the binary "
              "branch (0.1-3.5 MB);\nfull-precision approaches ship tens of "
              "MB for the deep networks.\n");
  return 0;
}
