// Reproduces Figure 5: training curves of the binary branch (test
// accuracy per epoch) for the four networks on an easy (MNIST-like) and a
// hard (CIFAR10-like) dataset.
#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"

using namespace lcrs;

int main() {
  set_log_level(LogLevel::kWarn);
  std::printf("Figure 5: training performance of the binary branch\n");
  std::printf("(test accuracy %% per epoch)\n\n");

  const models::Arch archs[] = {models::Arch::kLeNet, models::Arch::kAlexNet,
                                models::Arch::kResNet18,
                                models::Arch::kVgg16};
  const char* datasets[] = {"MNIST", "CIFAR10"};

  std::uint64_t seed = 500;
  for (const char* dataset : datasets) {
    std::printf("== %s-like ==\n", dataset);
    std::printf("%-10s", "epoch");
    const std::int64_t epochs = 5;
    for (std::int64_t e = 0; e < epochs; ++e) {
      std::printf(" %7lld", static_cast<long long>(e));
    }
    std::printf("\n");
    bench::print_rule(12 + 8 * static_cast<int>(epochs));
    for (const auto arch : archs) {
      core::TrainConfig tc = bench::train_config_for(arch, epochs, 32);
      bench::BudgetedRun budget;
      budget.train_n = arch == models::Arch::kLeNet ? 800 : 320;
      budget.test_n = 160;
      bench::TrainedCombo combo =
          bench::run_combo(arch, dataset, seed++, &tc, &budget);
      std::printf("%-10s", combo.network.c_str());
      for (const auto& es : combo.result.curve) {
        std::printf(" %7.2f", 100.0 * es.binary_accuracy);
      }
      std::printf("\n");
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("Paper reference: binary branches converge quickly (within a "
              "few epochs) and\ntrack the trend of the full-precision "
              "branch.\n");
  return 0;
}
