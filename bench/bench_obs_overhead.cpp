// Observability overhead microbenchmark.
//
// The profiling hooks in Sequential and the webinfer engine promise to
// be free when disabled: one relaxed atomic load per forward call, no
// timing, no registry traffic. This bench measures a webinfer forward
// pass (the paper's browser hot path) three ways --
//   baseline    profiling off (the seed-equivalent path)
//   disabled    profiling off again, interleaved, to expose run-to-run
//               noise: |disabled - baseline| IS the noise floor
//   enabled     profiling on, every op timed into the registry
// -- and then prints the per-op latency breakdown the enabled mode buys.
// Disabled-mode overhead must sit inside the noise band; enabled-mode
// overhead is reported, not bounded (it is opt-in).
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "common/obs/metrics.h"
#include "webinfer/engine.h"
#include "webinfer/export.h"

using namespace lcrs;

int main() {
  Rng rng(7);
  const models::ModelConfig cfg{models::Arch::kLeNet, 1, 28, 28, 10, 1.0};
  core::CompositeNetwork net = core::CompositeNetwork::build(cfg, rng);
  const webinfer::Engine engine(
      webinfer::export_browser_model(net, 1, 28, 28));
  const Tensor sample = Tensor::randn(Shape{1, 1, 28, 28}, rng);

  const auto forward = [&] { (void)engine.forward(sample); };
  for (int i = 0; i < 20; ++i) forward();  // warm caches

  constexpr int kReps = 300;
  obs::set_profiling_enabled(false);
  const double baseline_us = bench::median_micros(forward, kReps);
  const double disabled_us = bench::median_micros(forward, kReps);
  double enabled_us = 0.0;
  {
    const obs::ScopedProfiling profiling;
    enabled_us = bench::median_micros(forward, kReps);
  }

  const double noise_us = std::abs(disabled_us - baseline_us);
  std::printf("webinfer forward, median of %d reps:\n", kReps);
  std::printf("  baseline (profiling off)  %10.2f us\n", baseline_us);
  std::printf("  disabled (profiling off)  %10.2f us   (delta %.2f us = "
              "noise floor)\n",
              disabled_us, noise_us);
  std::printf("  enabled  (profiling on)   %10.2f us   (overhead %.2f us, "
              "%.1f%%)\n",
              enabled_us, enabled_us - baseline_us,
              100.0 * (enabled_us - baseline_us) / baseline_us);

  std::printf("\nper-op breakdown (enabled mode):\n");
  const obs::Snapshot snap = obs::Registry::global().snapshot();
  for (const auto& h : snap.histograms) {
    if (h.name.rfind("webinfer.op.", 0) == 0) {
      std::printf("  %-36s n=%-6lld mean %8.2f us  p99 %8.2f us\n",
                  h.name.c_str(), static_cast<long long>(h.count), h.mean(),
                  h.percentile(0.99));
    }
  }
  return 0;
}
