// Reproduces Figure 10: recognition latency in the Web-AR case study
// (China Mobile logos, ResNet18): LCRS-B (binary-branch exit), LCRS-M
// (edge completion) and the baseline approaches.
//
// The composite is trained on the synthetic logo dataset expanded with
// the paper's augmentation pipeline; LCRS-B/LCRS-M are measured from real
// per-sample exit decisions through the simulated runtime.
#include <cstdio>

#include "baselines/edgent.h"
#include "baselines/lcrs_approach.h"
#include "baselines/mobile_only.h"
#include "baselines/neurosurgeon.h"
#include "bench_util.h"
#include "common/logging.h"
#include "core/joint_trainer.h"
#include "data/logo.h"
#include "edge/local_runtime.h"

using namespace lcrs;

int main() {
  set_log_level(LogLevel::kWarn);
  std::printf("Figure 10: Web-AR recognition latency, China Mobile case "
              "(ResNet18)\n\n");

  // Build the augmented logo dataset (paper Sec. V-C).
  data::LogoSpec logo_spec;
  logo_spec.num_brands = 10;
  logo_spec.base_per_brand = 6;
  logo_spec.augment_copies = 10;
  Rng rng(77);
  const data::LogoData logos = data::make_logo_data(logo_spec, rng);
  std::printf("logo dataset: %lld train / %lld test samples, %zu brands "
              "(%s, %s, ...)\n",
              static_cast<long long>(logos.train.size()),
              static_cast<long long>(logos.test.size()), logos.names.size(),
              logos.names[0].c_str(), logos.names[1].c_str());

  // Joint-train a width-scaled ResNet18 composite on the logos.
  const models::ModelConfig cfg{models::Arch::kResNet18, 3, 32, 32,
                                logo_spec.num_brands, 0.25};
  core::CompositeNetwork net = core::CompositeNetwork::build(cfg, rng);
  const core::TrainConfig tc =
      bench::train_config_for(models::Arch::kResNet18, 2, 32);
  core::JointTrainer trainer(net, tc);
  const core::TrainResult result =
      trainer.train(logos.train, logos.test, rng);
  std::printf("trained: M_Acc %.1f%%  B_Acc %.1f%%  tau %.4f  exit %.0f%%\n\n",
              100.0 * result.main_accuracy, 100.0 * result.binary_accuracy,
              result.exit_stats.tau, 100.0 * result.exit_stats.exit_fraction);

  // Measure LCRS-B / LCRS-M from real decisions on 100 scans.
  const sim::CostModel cost = sim::CostModel::paper_default();
  edge::LocalRuntime runtime(net, core::ExitPolicy{result.exit_stats.tau},
                             cost, Shape{3, 32, 32});
  Rng scan_rng(5);
  double b_total = 0.0, m_total = 0.0;
  std::int64_t b_count = 0, m_count = 0;
  for (int i = 0; i < 100; ++i) {
    const std::int64_t idx = scan_rng.randint(0, logos.test.size() - 1);
    const edge::SimStep step =
        runtime.classify(logos.test.image(idx), scan_rng);
    const double ms = runtime.amortized_load_ms() + step.total_ms();
    if (step.exit_point == core::ExitPoint::kBinaryBranch) {
      b_total += ms;
      ++b_count;
    } else {
      m_total += ms;
      ++m_count;
    }
  }

  // Baselines on the full-width ResNet18 profile.
  baselines::ModelUnderTest model;
  model.name = "ResNet18";
  model.layers = bench::full_width_profile(models::Arch::kResNet18,
                                           logo_spec.num_brands);
  model.input_elems = 3 * 32 * 32;
  const sim::Scenario scenario;

  std::printf("%-14s %12s\n", "approach", "latency(ms)");
  bench::print_rule(28);
  if (b_count > 0) {
    std::printf("%-14s %12.0f   (%lld scans exited at the browser)\n",
                "LCRS-B", b_total / static_cast<double>(b_count),
                static_cast<long long>(b_count));
  }
  if (m_count > 0) {
    std::printf("%-14s %12.0f   (%lld scans completed at the edge)\n",
                "LCRS-M", m_total / static_cast<double>(m_count),
                static_cast<long long>(m_count));
  }
  std::printf("%-14s %12.0f\n", "Neurosurgeon",
              baselines::evaluate_neurosurgeon(model, cost, scenario)
                  .total_ms);
  std::printf("%-14s %12.0f\n", "Edgent",
              baselines::evaluate_edgent(model, cost, scenario).total_ms);
  std::printf("%-14s %12.0f\n", "Mobile-only",
              baselines::evaluate_mobile_only(model, cost, scenario)
                  .total_ms);
  bench::print_rule(28);
  std::printf("\nPaper reference: LCRS-B and LCRS-M both complete within "
              "hundreds of ms while\nthe DNN-executing frameworks take "
              "seconds; the whole scan-recognize-render\nloop stays under "
              "one second.\n");
  return 0;
}
