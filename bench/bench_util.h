// Shared helpers for the table/figure harnesses.
//
// Each bench binary regenerates one table or figure of the paper on the
// synthetic substrate. Training runs use width-scaled networks so a
// single CPU core finishes in seconds-to-minutes; model-size columns are
// always computed from the full-width (width = 1.0) architectures.
//
// Timing: all measurement in bench/ goes through lcrs::Stopwatch, which
// is steady_clock-based -- never std::chrono::system_clock or
// high_resolution_clock, whose wall-clock steps would corrupt latency
// columns mid-run. (Audited 2026-08: no wall-clock timing exists in
// this tree; keep it that way.)
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/obs/flight_recorder.h"
#include "common/simd.h"
#include "common/stopwatch.h"
#include "core/composite.h"
#include "core/joint_trainer.h"
#include "data/synthetic.h"
#include "models/accounting.h"
#include "sim/cost_model.h"

namespace lcrs::bench {

/// Median-of-reps microsecond timing for microbenchmarks: runs `fn`
/// `reps` times and returns the median elapsed time, which is robust to
/// the scheduler hiccups a mean would absorb.
template <typename Fn>
double median_micros(Fn&& fn, int reps) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    fn();
    times.push_back(watch.micros());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// Width multiplier used when *training* each architecture on one core.
inline double train_width(models::Arch arch) {
  switch (arch) {
    case models::Arch::kLeNet:
      return 1.0;  // small enough to train at full width
    case models::Arch::kAlexNet:
      return 0.25;
    case models::Arch::kResNet18:
      return 0.125;
    case models::Arch::kVgg16:
      return 0.125;
  }
  return 0.25;
}

/// Training-set sizes tuned for single-core wall time.
struct BudgetedRun {
  std::int64_t train_n = 800;
  std::int64_t test_n = 200;
  std::int64_t epochs = 3;
  std::int64_t batch = 32;
};

inline BudgetedRun budget_for(models::Arch arch, std::int64_t num_classes) {
  BudgetedRun b;
  if (arch == models::Arch::kLeNet) {
    b.train_n = 1280;
    b.epochs = 5;
  } else {
    // Deep nets memorize small synthetic sets; they need the extra data
    // (plus the weight decay below) to generalize at all.
    b.train_n = 1152;
    b.epochs = 3;
  }
  if (num_classes >= 100) {
    // 100-way classification: more epochs matter more than more samples
    // here -- the deep mains descend into the uniform solution first and
    // need optimization steps to climb out of it.
    if (arch == models::Arch::kLeNet) {
      b.train_n = std::max(b.train_n, num_classes * 15);
      b.epochs += 1;
    } else {
      b.train_n = 800;
      b.epochs += 3;
    }
  }
  b.test_n = std::max<std::int64_t>(200, num_classes * 2);
  return b;
}

/// Per-architecture trainer settings tuned on the synthetic substrate.
inline core::TrainConfig train_config_for(models::Arch arch,
                                          std::int64_t epochs,
                                          std::int64_t batch) {
  core::TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = batch;
  tc.verbose = false;
  if (arch != models::Arch::kLeNet) {
    tc.lr_main = 2e-3;
    tc.weight_decay_main = 3e-4;
  }
  return tc;
}

/// A trained composite network plus everything the tables report.
struct TrainedCombo {
  std::string network;
  std::string dataset;
  core::TrainResult result;
  double main_size_mb = 0.0;    // full-width main branch (M_size)
  double binary_size_mb = 0.0;  // browser payload: conv1 + packed branch
  std::unique_ptr<core::CompositeNetwork> net;  // the trained network
  data::TrainTest data;                         // its train/test split
};

/// Builds, jointly trains and measures one (network, dataset) cell of
/// Table I.
inline TrainedCombo run_combo(models::Arch arch, const std::string& dataset,
                              std::uint64_t seed,
                              const core::TrainConfig* override_cfg = nullptr,
                              const BudgetedRun* override_budget = nullptr) {
  const data::SyntheticSpec spec = data::spec_by_name(dataset);
  Rng rng(seed);

  models::ModelConfig cfg{arch, spec.channels, spec.height, spec.width,
                          spec.num_classes, train_width(arch)};
  cfg.dropout = 0.2;  // full 0.5 dropout pins the head at uniform on the
                      // small synthetic training sets
  TrainedCombo combo;
  combo.net = std::make_unique<core::CompositeNetwork>(
      core::CompositeNetwork::build(cfg, rng));

  const BudgetedRun budget = override_budget != nullptr
                                 ? *override_budget
                                 : budget_for(arch, spec.num_classes);
  combo.data =
      data::make_synthetic_pair(spec, budget.train_n, budget.test_n, rng);

  core::TrainConfig tc = train_config_for(arch, budget.epochs, budget.batch);
  if (override_cfg != nullptr) tc = *override_cfg;
  core::JointTrainer trainer(*combo.net, tc);

  combo.network = models::arch_name(arch);
  combo.dataset = dataset;
  combo.result = trainer.train(combo.data.train, combo.data.test, rng);

  // Size columns from the full-width architecture.
  Rng size_rng(1);
  const models::ModelConfig full{arch, spec.channels, spec.height, spec.width,
                                 spec.num_classes, 1.0};
  models::MainBranch full_main = models::build_main_branch(full, size_rng);
  const std::int64_t main_bytes =
      full_main.conv1->param_bytes() + full_main.rest->param_bytes();
  auto full_branch = models::build_binary_branch(
      models::default_branch(arch), full_main.out_c, full_main.out_h,
      full_main.out_w, spec.num_classes, size_rng);
  const std::int64_t branch_bytes =
      full_main.conv1->param_bytes() +
      models::browser_payload_bytes(*full_branch);
  combo.main_size_mb = static_cast<double>(main_bytes) / (1024.0 * 1024.0);
  combo.binary_size_mb =
      static_cast<double>(branch_bytes) / (1024.0 * 1024.0);
  return combo;
}

/// Profiles a full-width monolithic model for the cost-model benches.
inline std::vector<models::LayerProfile> full_width_profile(
    models::Arch arch, std::int64_t classes = 10) {
  Rng rng(3);
  const models::ModelConfig cfg{arch, 3, 32, 32, classes, 1.0};
  auto mono = models::build_monolithic(cfg, rng);
  return models::profile_layers(*mono, Shape{3, 32, 32});
}

inline void print_rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

// ---------------------------------------------------------------------------
// Machine-readable bench telemetry.
//
// CI archives one JSON file per bench binary so regressions can be
// diffed across runs by tooling instead of by eyeballing stdout. The
// schema is deliberately flat and versioned:
//
//   {"schema": "lcrs-bench-v1",
//    "bench":  "<binary name>",
//    "host":   {"simd_level": ..., "compiler": ..., "build": ...,
//               "hardware_threads": ...},
//    "results": [{"name": ..., "unit": ..., "value": ...,
//                 "ci_lo": ..., "ci_hi": ..., "samples": ...}, ...]}
//
// No timestamps: two runs of the same binary on the same tree should
// produce byte-identical files modulo the measured numbers, so diffs
// show only what actually changed.

/// One measured quantity. For single-shot cells ci_lo == ci_hi == value
/// and samples == 1; for repeated measurements [ci_lo, ci_hi] is the
/// observed min/max envelope across samples.
struct BenchRecord {
  std::string name;
  std::string unit;
  double value = 0.0;
  double ci_lo = 0.0;
  double ci_hi = 0.0;
  int samples = 1;
};

class BenchReport {
 public:
  explicit BenchReport(std::string bench) : bench_(std::move(bench)) {}

  void add(const std::string& name, const std::string& unit, double value,
           double ci_lo, double ci_hi, int samples) {
    records_.push_back(BenchRecord{name, unit, value, ci_lo, ci_hi, samples});
  }
  void add(const std::string& name, const std::string& unit, double value) {
    add(name, unit, value, value, value, 1);
  }

  /// Writes the report; returns false (after perror-style logging) when
  /// the file cannot be written so harnesses can fail the run.
  bool write(const std::string& path) const {
    std::string out = "{\n";
    out += "  \"schema\": \"lcrs-bench-v1\",\n";
    out += "  \"bench\": \"" + obs::json_escape(bench_) + "\",\n";
    out += "  \"host\": {\n";
    out += "    \"simd_level\": \"";
    out += simd::level_name(simd::active_level());
    out += "\",\n";
    out += "    \"compiler\": \"" + obs::json_escape(__VERSION__) + "\",\n";
#ifdef NDEBUG
    out += "    \"build\": \"release\",\n";
#else
    out += "    \"build\": \"debug\",\n";
#endif
    out += "    \"hardware_threads\": " +
           std::to_string(std::thread::hardware_concurrency()) + "\n  },\n";
    out += "  \"results\": [";
    char buf[256];
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const BenchRecord& r = records_[i];
      std::snprintf(buf, sizeof(buf),
                    "\"value\": %.10g, \"ci_lo\": %.10g, \"ci_hi\": %.10g, "
                    "\"samples\": %d}",
                    r.value, r.ci_lo, r.ci_hi, r.samples);
      out += i == 0 ? "\n" : ",\n";
      out += "    {\"name\": \"" + obs::json_escape(r.name) +
             "\", \"unit\": \"" + obs::json_escape(r.unit) + "\", " + buf;
    }
    out += "\n  ]\n}\n";

    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot open %s for writing\n",
                   path.c_str());
      return false;
    }
    const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
    std::fclose(f);
    if (!ok) std::fprintf(stderr, "bench: short write to %s\n", path.c_str());
    return ok;
  }

  bool empty() const { return records_.empty(); }

 private:
  std::string bench_;
  std::vector<BenchRecord> records_;
};

/// Pulls `--json <path>` out of argv (compacting the remaining args so
/// positional parsing is undisturbed) and returns the path, or "" when
/// the flag is absent.
inline std::string take_json_flag(int& argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      const std::string path = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      return path;
    }
  }
  return std::string();
}

}  // namespace lcrs::bench
