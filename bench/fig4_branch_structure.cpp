// Reproduces Figure 4: accuracy and model size of binary-branch
// structures on an AlexNet main branch.
//   (a) sweep the number of binary convolutional layers (1 binary FC);
//   (b) sweep the number of binary fully-connected layers (1 binary conv).
//
// The main branch is jointly trained once; each branch variant is then
// trained on the frozen conv1 features, exactly the design question the
// figure answers.
#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"
#include "nn/loss.h"
#include "nn/metrics.h"
#include "nn/optimizer.h"

using namespace lcrs;

namespace {

/// conv1 features of a dataset through the trained shared stage.
Tensor shared_features(core::CompositeNetwork& net, const Tensor& images) {
  std::vector<Tensor> chunks;
  const std::int64_t batch = 64;
  std::vector<std::int64_t> dims;
  Tensor out;
  for (std::int64_t begin = 0; begin < images.dim(0); begin += batch) {
    const std::int64_t count = std::min(batch, images.dim(0) - begin);
    Tensor f = net.shared_stage().forward(
        images.slice_outer(begin, begin + count), false);
    if (out.numel() == 0) {
      dims = f.shape().dims();
      dims[0] = images.dim(0);
      out = Tensor{Shape(dims)};
    }
    const std::int64_t per = f.numel() / count;
    std::copy(f.data(), f.data() + f.numel(), out.data() + begin * per);
  }
  return out;
}

double train_branch(nn::Sequential& branch, const Tensor& train_x,
                    const std::vector<std::int64_t>& train_y,
                    const Tensor& test_x,
                    const std::vector<std::int64_t>& test_y) {
  nn::Adam adam(1e-3);
  const std::int64_t batch = 32;
  for (int epoch = 0; epoch < 4; ++epoch) {
    for (std::int64_t begin = 0; begin + batch <= train_x.dim(0);
         begin += batch) {
      branch.zero_grad();
      const Tensor x = train_x.slice_outer(begin, begin + batch);
      const std::vector<std::int64_t> y(train_y.begin() + begin,
                                        train_y.begin() + begin + batch);
      const Tensor logits = branch.forward(x, true);
      const nn::LossResult r = nn::softmax_cross_entropy(logits, y);
      branch.backward(r.grad_logits);
      adam.step(branch.params());
    }
  }
  return nn::accuracy(branch.forward(test_x, false), test_y);
}

/// Full-width packed size of a branch structure (the figure's size axis).
double full_width_branch_mb(const models::BinaryBranchConfig& bc) {
  Rng rng(2);
  const models::ModelConfig full{models::Arch::kAlexNet, 3, 32, 32, 10, 1.0};
  models::MainBranch mb = models::build_main_branch(full, rng);
  auto branch = models::build_binary_branch(bc, mb.out_c, mb.out_h, mb.out_w,
                                            10, rng);
  return static_cast<double>(models::browser_payload_bytes(*branch)) /
         (1024.0 * 1024.0);
}

}  // namespace

int main() {
  set_log_level(LogLevel::kWarn);
  std::printf("Figure 4: binary branch structure sweep (AlexNet main "
              "branch, CIFAR10-like)\n\n");

  // Jointly train the composite once; reuse its shared stage.
  bench::TrainedCombo combo =
      bench::run_combo(models::Arch::kAlexNet, "CIFAR10", 42);
  const Tensor train_f =
      shared_features(*combo.net, combo.data.train.images);
  const Tensor test_f = shared_features(*combo.net, combo.data.test.images);
  const std::int64_t in_c = combo.net->shared_out_c();
  const std::int64_t in_h = combo.net->shared_out_h();
  const std::int64_t in_w = combo.net->shared_out_w();
  std::printf("main branch trained: M_Acc %.2f%%  (conv1 features "
              "%lldx%lldx%lld)\n\n",
              100.0 * combo.result.main_accuracy,
              static_cast<long long>(in_c), static_cast<long long>(in_h),
              static_cast<long long>(in_w));

  std::printf("(a) n binary conv layers + 1 binary FC + float FC\n");
  std::printf("%6s %10s %14s\n", "n", "B_Acc(%)", "size(MB,full)");
  bench::print_rule(36);
  for (int n = 1; n <= 4; ++n) {
    models::BinaryBranchConfig bc = models::default_branch(
        models::Arch::kAlexNet);
    bc.n_binary_conv = n;
    bc.n_binary_fc = 1;
    Rng rng(100 + n);
    auto branch =
        models::build_binary_branch(bc, in_c, in_h, in_w, 10, rng);
    const double acc =
        train_branch(*branch, train_f, combo.data.train.labels, test_f,
                     combo.data.test.labels);
    std::printf("%6d %10.2f %14.3f\n", n, 100.0 * acc,
                full_width_branch_mb(bc));
    std::fflush(stdout);
  }

  std::printf("\n(b) 1 binary conv + n binary FC layers + float FC\n");
  std::printf("%6s %10s %14s\n", "n", "B_Acc(%)", "size(MB,full)");
  bench::print_rule(36);
  for (int n = 1; n <= 4; ++n) {
    models::BinaryBranchConfig bc = models::default_branch(
        models::Arch::kAlexNet);
    bc.n_binary_conv = 1;
    bc.n_binary_fc = n;
    Rng rng(200 + n);
    auto branch =
        models::build_binary_branch(bc, in_c, in_h, in_w, 10, rng);
    const double acc =
        train_branch(*branch, train_f, combo.data.train.labels, test_f,
                     combo.data.test.labels);
    std::printf("%6d %10.2f %14.3f\n", n, 100.0 * acc,
                full_width_branch_mb(bc));
    std::fflush(stdout);
  }

  std::printf("\nPaper reference: accuracy degrades as more binary conv "
              "layers stack; one or two\nbinary FC layers give the best "
              "accuracy/size trade-off.\n");
  return 0;
}
