// Reproduces Figure 6: average end-to-end latency of LCRS as the number
// of processed samples grows, for each network.
//
// Inference decisions are *real* (trained composite + Algorithm 2 on
// synthetic CIFAR10-like inputs); per-stage timings come from the
// calibrated cost model with link jitter, so the series shows the
// paper's behaviour: a stable average with communication-driven
// fluctuations.
#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"
#include "edge/local_runtime.h"

using namespace lcrs;

int main() {
  set_log_level(LogLevel::kWarn);
  std::printf("Figure 6: average LCRS latency vs number of samples "
              "(CIFAR10-like, jittered 4G)\n\n");

  const std::int64_t counts[] = {20, 40, 60, 80, 100, 120, 140, 160, 180,
                                 200};
  std::printf("%-10s", "samples");
  for (const auto c : counts) std::printf(" %6lld", static_cast<long long>(c));
  std::printf("\n");
  bench::print_rule(12 + 7 * 10);

  std::uint64_t seed = 900;
  for (const auto arch : {models::Arch::kLeNet, models::Arch::kAlexNet,
                          models::Arch::kResNet18, models::Arch::kVgg16}) {
    core::TrainConfig tc = bench::train_config_for(arch, 2, 32);
    bench::BudgetedRun budget;
    budget.train_n = arch == models::Arch::kLeNet ? 800 : 320;
    budget.test_n = 220;
    bench::TrainedCombo combo =
        bench::run_combo(arch, "CIFAR10", seed++, &tc, &budget);

    sim::LinkSpec link = sim::lte_4g();
    link.jitter_frac = 0.25;  // the paper's unstable-wireless setting
    sim::CostModel cost{sim::mobile_web_browser(), sim::edge_server(), link};
    edge::LocalRuntime runtime(*combo.net,
                               core::ExitPolicy{combo.result.exit_stats.tau},
                               cost, Shape{3, 32, 32});

    Rng rng(seed * 13);
    std::printf("%-10s", combo.network.c_str());
    for (const auto count : counts) {
      double total =
          runtime.amortized_load_ms() * static_cast<double>(count);
      for (std::int64_t i = 0; i < count; ++i) {
        const std::int64_t idx =
            rng.randint(0, combo.data.test.size() - 1);
        total += runtime.classify(combo.data.test.image(idx), rng).total_ms();
      }
      std::printf(" %6.0f", total / static_cast<double>(count));
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  bench::print_rule(12 + 7 * 10);
  std::printf("\nPaper reference: the average latency stays nearly flat in "
              "the sample count;\ncommunication jitter causes small "
              "fluctuations. Note the browser compute here\nis priced on "
              "width-scaled networks, so absolute values sit below Table "
              "II's\nfull-width numbers.\n");
  return 0;
}
